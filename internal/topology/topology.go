// Package topology models backbone networks at the PoP level: nodes
// (Points of Presence), directed links between them, intra-PoP links for
// traffic entering and exiting at the same PoP, shortest-path routing, and
// the routing matrix A that connects OD-flow traffic x to link traffic
// y = Ax (Section 4.1 of the paper).
//
// Presets reproduce the two networks of the paper's Figure 2 and Table 1:
// Abilene (11 PoPs, 41 links including 11 intra-PoP) and Sprint-Europe
// (13 PoPs, 49 links including 13 intra-PoP).
package topology

import (
	"errors"
	"fmt"

	"netanomaly/internal/mat"
)

// PoP is a Point of Presence, a node in the backbone.
type PoP struct {
	ID   int
	Name string
}

// Link is a directed link. Intra-PoP links (used by OD flows whose origin
// and destination coincide) have Src == Dst.
type Link struct {
	ID       int
	Src, Dst int
}

// Intra reports whether the link is an intra-PoP link.
func (l Link) Intra() bool { return l.Src == l.Dst }

// Topology is an immutable PoP-level network with precomputed routing.
// Build one with a Builder or a preset constructor.
type Topology struct {
	name  string
	pops  []PoP
	links []Link
	// linkIndex[src][dst] is the link ID for the directed edge src->dst,
	// or -1 when absent.
	linkIndex [][]int
	// routes[origin][destination] is the ordered list of link IDs an OD
	// flow traverses.
	routes [][][]int
}

// Builder accumulates PoPs and links and produces a routed Topology.
type Builder struct {
	name    string
	pops    []PoP
	byName  map[string]int
	edges   map[[2]int]bool
	withIn  bool
	buildEr error
}

// NewBuilder returns a Builder for a network with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]int), edges: make(map[[2]int]bool), withIn: true}
}

// WithoutIntraPoPLinks disables the automatic creation of one intra-PoP
// link per PoP. The paper's link counts include them (Table 1, footnote 2),
// so they are on by default.
func (b *Builder) WithoutIntraPoPLinks() *Builder {
	b.withIn = false
	return b
}

// AddPoP adds a named PoP and returns its ID. Duplicate names are an error
// reported at Build time.
func (b *Builder) AddPoP(name string) int {
	if _, dup := b.byName[name]; dup {
		b.buildEr = errors.Join(b.buildEr, fmt.Errorf("topology: duplicate PoP %q", name))
		return -1
	}
	id := len(b.pops)
	b.pops = append(b.pops, PoP{ID: id, Name: name})
	b.byName[name] = id
	return id
}

// AddDuplex adds the pair of directed links a<->b, identified by PoP name.
// Unknown names or self-edges are errors reported at Build time.
func (b *Builder) AddDuplex(a, bName string) *Builder {
	ai, ok1 := b.byName[a]
	bi, ok2 := b.byName[bName]
	if !ok1 || !ok2 {
		b.buildEr = errors.Join(b.buildEr, fmt.Errorf("topology: AddDuplex unknown PoP in (%q,%q)", a, bName))
		return b
	}
	if ai == bi {
		b.buildEr = errors.Join(b.buildEr, fmt.Errorf("topology: AddDuplex self edge %q", a))
		return b
	}
	b.edges[[2]int{ai, bi}] = true
	b.edges[[2]int{bi, ai}] = true
	return b
}

// Build validates the accumulated network, computes shortest-path routes
// for every OD pair, and returns the immutable Topology. The network must
// be strongly connected (every PoP reachable from every other).
func (b *Builder) Build() (*Topology, error) {
	if b.buildEr != nil {
		return nil, b.buildEr
	}
	n := len(b.pops)
	if n == 0 {
		return nil, errors.New("topology: no PoPs")
	}
	t := &Topology{name: b.name, pops: append([]PoP(nil), b.pops...)}
	t.linkIndex = make([][]int, n)
	for i := range t.linkIndex {
		t.linkIndex[i] = make([]int, n)
		for j := range t.linkIndex[i] {
			t.linkIndex[i][j] = -1
		}
	}
	// Deterministic link ordering: intra-PoP links first (by PoP ID), then
	// inter-PoP links sorted by (src, dst).
	if b.withIn {
		for i := 0; i < n; i++ {
			t.addLink(i, i)
		}
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src != dst && b.edges[[2]int{src, dst}] {
				t.addLink(src, dst)
			}
		}
	}
	if err := t.computeRoutes(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Topology) addLink(src, dst int) {
	id := len(t.links)
	t.links = append(t.links, Link{ID: id, Src: src, Dst: dst})
	t.linkIndex[src][dst] = id
}

// computeRoutes fills t.routes with the shortest path (in hops) for every
// OD pair, breaking ties deterministically by preferring lower PoP IDs
// earlier on the path (single-path routing, as in the paper's use of a
// routing table snapshot).
func (t *Topology) computeRoutes() error {
	n := len(t.pops)
	t.routes = make([][][]int, n)
	for origin := 0; origin < n; origin++ {
		t.routes[origin] = make([][]int, n)
		// BFS from origin with deterministic neighbour order.
		prev := make([]int, n)
		dist := make([]int, n)
		for i := range prev {
			prev[i] = -1
			dist[i] = -1
		}
		dist[origin] = 0
		queue := []int{origin}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if v == u || t.linkIndex[u][v] < 0 {
					continue
				}
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					prev[v] = u
					queue = append(queue, v)
				}
			}
		}
		for dst := 0; dst < n; dst++ {
			if dst == origin {
				li := t.linkIndex[origin][origin]
				if li >= 0 {
					t.routes[origin][dst] = []int{li}
				} else {
					t.routes[origin][dst] = []int{}
				}
				continue
			}
			if dist[dst] < 0 {
				return fmt.Errorf("topology: %s is not connected: no path %s -> %s",
					t.name, t.pops[origin].Name, t.pops[dst].Name)
			}
			// Walk back from dst to origin.
			var rev []int
			for v := dst; v != origin; v = prev[v] {
				rev = append(rev, t.linkIndex[prev[v]][v])
			}
			path := make([]int, len(rev))
			for i, id := range rev {
				path[len(rev)-1-i] = id
			}
			t.routes[origin][dst] = path
		}
	}
	return nil
}

// Name returns the network's name.
func (t *Topology) Name() string { return t.name }

// NumPoPs returns the number of PoPs.
func (t *Topology) NumPoPs() int { return len(t.pops) }

// NumLinks returns the number of directed links, including intra-PoP links.
func (t *Topology) NumLinks() int { return len(t.links) }

// NumFlows returns the number of OD flows, (#PoPs)^2.
func (t *Topology) NumFlows() int { return len(t.pops) * len(t.pops) }

// PoPs returns a copy of the PoP list.
func (t *Topology) PoPs() []PoP { return append([]PoP(nil), t.pops...) }

// Links returns a copy of the link list.
func (t *Topology) Links() []Link { return append([]Link(nil), t.links...) }

// PoPByName returns the PoP with the given name.
func (t *Topology) PoPByName(name string) (PoP, bool) {
	for _, p := range t.pops {
		if p.Name == name {
			return p, true
		}
	}
	return PoP{}, false
}

// FlowID returns the OD-flow index for the origin and destination PoP IDs.
// Flows are ordered origin-major: flow = origin*NumPoPs + destination.
func (t *Topology) FlowID(origin, dst int) int {
	n := len(t.pops)
	if origin < 0 || origin >= n || dst < 0 || dst >= n {
		panic(fmt.Sprintf("topology: FlowID (%d,%d) out of range for %d PoPs", origin, dst, n))
	}
	return origin*n + dst
}

// FlowEndpoints inverts FlowID.
func (t *Topology) FlowEndpoints(flow int) (origin, dst int) {
	n := len(t.pops)
	if flow < 0 || flow >= n*n {
		panic(fmt.Sprintf("topology: flow %d out of range %d", flow, n*n))
	}
	return flow / n, flow % n
}

// FlowName renders a flow as "origin->destination".
func (t *Topology) FlowName(flow int) string {
	o, d := t.FlowEndpoints(flow)
	return t.pops[o].Name + "->" + t.pops[d].Name
}

// Route returns the link IDs traversed by the given OD flow, in path order.
// The returned slice must not be modified.
func (t *Topology) Route(flow int) []int {
	o, d := t.FlowEndpoints(flow)
	return t.routes[o][d]
}

// RoutingMatrix returns the (#links x #flows) matrix A with A[i][j] = 1
// when OD flow j traverses link i (Section 4.1). The matrix is freshly
// allocated on each call.
func (t *Topology) RoutingMatrix() *mat.Dense {
	a := mat.Zeros(len(t.links), t.NumFlows())
	for f := 0; f < t.NumFlows(); f++ {
		for _, li := range t.Route(f) {
			a.Set(li, f, 1)
		}
	}
	return a
}
