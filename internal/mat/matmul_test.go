package mat

import (
	"math/rand"
	"testing"
)

// mulNaive is the reference triple loop the kernels must reproduce.
func mulNaive(a, b *Dense) *Dense {
	c := Zeros(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			var s float64
			for k := 0; k < a.cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func TestMulMatchesNaiveAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Shapes chosen to cross the unroll remainder (cols % 4 != 0), the
	// column-block boundary, and typical subspace-method sizes.
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{3, 5, 7},
		{8, 8, 8},
		{17, 13, 9},
		{40, 41, 41},
		{100, 49, 300}, // spans two column blocks
		{257, 10, 260},
	}
	for _, s := range shapes {
		a := randomDense(rng, s.m, s.k)
		b := randomDense(rng, s.k, s.n)
		got := Mul(a, b)
		want := mulNaive(a, b)
		if !EqualApprox(got, want, 1e-10) {
			t.Fatalf("Mul mismatch at %dx%d * %dx%d", s.m, s.k, s.n, s.n)
		}
	}
}

func TestMulStripeParallelMatchesSerial(t *testing.T) {
	// Exercise the parallel fan-out directly so the test does not depend
	// on GOMAXPROCS or the size cutoff.
	rng := rand.New(rand.NewSource(8))
	a := randomDense(rng, 123, 61)
	b := randomDense(rng, 61, 37)
	want := Mul(a, b)
	got := Zeros(123, 37)
	parallelRows(123, 4, func(i0, i1 int) {
		mulStripe(got, a, b, i0, i1)
	})
	if !EqualApprox(got, want, 1e-12) {
		t.Fatal("parallel stripes disagree with serial multiply")
	}
}

func TestMulIntoReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomDense(rng, 12, 20)
	b := randomDense(rng, 20, 6)
	dst := randomDense(rng, 12, 6) // stale contents must be overwritten
	MulInto(dst, a, b)
	if !EqualApprox(dst, mulNaive(a, b), 1e-10) {
		t.Fatal("MulInto did not overwrite dst with the product")
	}
}

func TestMulIntoPanicsOnBadDst(t *testing.T) {
	a := Zeros(3, 4)
	b := Zeros(4, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched dst")
		}
	}()
	MulInto(Zeros(3, 4), a, b)
}

func TestGramMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, shape := range []struct{ r, c int }{{5, 3}, {100, 49}, {7, 1}, {1, 6}} {
		m := randomDense(rng, shape.r, shape.c)
		got := m.Gram()
		want := mulNaive(m.T(), m)
		if !EqualApprox(got, want, 1e-9) {
			t.Fatalf("Gram mismatch at %dx%d", shape.r, shape.c)
		}
	}
}

func TestGramStripeReduction(t *testing.T) {
	// The partial-Gram reduction used by the parallel path must equal the
	// single-stripe accumulation.
	rng := rand.New(rand.NewSource(11))
	m := randomDense(rng, 90, 13)
	whole := Zeros(13, 13)
	gramStripe(whole, m, 0, 90)
	parts := Zeros(13, 13)
	for _, seg := range [][2]int{{0, 31}, {31, 64}, {64, 90}} {
		p := Zeros(13, 13)
		gramStripe(p, m, seg[0], seg[1])
		for i, v := range p.data {
			parts.data[i] += v
		}
	}
	if !EqualApprox(whole, parts, 1e-12) {
		t.Fatal("stripe reduction disagrees with whole-matrix accumulation")
	}
}

func BenchmarkMulPaperRefit(b *testing.B) {
	// The shape of the refit's heavy products: window x links times a
	// links-square operator.
	rng := rand.New(rand.NewSource(12))
	a := randomDense(rng, 1008, 49)
	op := randomDense(rng, 49, 49)
	dst := Zeros(1008, 49)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, a, op)
	}
}
