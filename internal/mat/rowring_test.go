package mat

import "testing"

func TestRowRingBuffer(t *testing.T) {
	r := NewRowRing(3, 2)
	if r.Matrix() != nil {
		t.Fatal("empty ring must return nil matrix")
	}
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatalf("fresh ring cap/len = %d/%d", r.Cap(), r.Len())
	}
	r.Push([]float64{1, 1})
	r.Push([]float64{2, 2})
	m := r.Matrix()
	if m.Rows() != 2 || m.At(0, 0) != 1 || m.At(1, 0) != 2 {
		t.Fatalf("partial ring matrix wrong: %v", m)
	}
	r.Push([]float64{3, 3})
	r.Push([]float64{4, 4}) // evicts 1
	if r.Len() != 3 {
		t.Fatalf("full ring len = %d", r.Len())
	}
	m = r.Matrix()
	if m.Rows() != 3 {
		t.Fatalf("full ring rows = %d", m.Rows())
	}
	if m.At(0, 0) != 2 || m.At(2, 0) != 4 {
		t.Fatalf("ring order wrong: %v", m)
	}
	r.Reset()
	if r.Len() != 0 || r.Matrix() != nil {
		t.Fatal("reset ring must be empty")
	}
	r.Push([]float64{5, 5})
	if m := r.Matrix(); m.Rows() != 1 || m.At(0, 0) != 5 {
		t.Fatalf("ring after reset wrong: %v", m)
	}
}

func TestRowRingRejectsMismatchedRow(t *testing.T) {
	r := NewRowRing(3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched row length")
		}
	}()
	r.Push([]float64{1, 2, 3})
}
