// Package mat implements the dense linear algebra needed by the subspace
// method: matrices, vectors, QR decomposition, a symmetric eigensolver
// (cyclic Jacobi) and a one-sided Jacobi SVD.
//
// The package is intentionally small and self-contained (standard library
// only). Matrices are stored row-major. Dimension mismatches panic, in the
// style of gonum: they are programmer errors, not runtime conditions.
//
// Numerical scope: the subspace method operates on measurement matrices of
// shape t x m with t ~ 1000 time bins and m <= ~50 links, and on m x m
// covariance matrices. The Jacobi algorithms used here are quadratically
// convergent and highly accurate at these sizes.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a dense, row-major matrix of float64.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a rows x cols matrix backed by data (len rows*cols).
// If data is nil a zeroed backing slice is allocated. The slice is used
// directly, not copied.
func NewDense(rows, cols int, data []float64) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	if data == nil {
		data = make([]float64, rows*cols)
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// Zeros returns a rows x cols zero matrix.
func Zeros(rows, cols int) *Dense { return NewDense(rows, cols, nil) }

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := Zeros(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// RawData returns the row-major backing slice of m. Mutations are visible
// in m. Kernels that stream whole matrices (batched SPE, the blocked
// multiply) use it to avoid per-row slicing in their inner loops.
func (m *Dense) RawData() []float64 { return m.data }

// RowView returns a slice aliasing row i. Mutations are visible in m.
func (m *Dense) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.RowView(i))
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies vals into row i.
func (m *Dense) SetRow(i int, vals []float64) {
	if len(vals) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d != cols %d", len(vals), m.cols))
	}
	copy(m.RowView(i), vals)
}

// SetCol copies vals into column j.
func (m *Dense) SetCol(j int, vals []float64) {
	if len(vals) != m.rows {
		panic(fmt.Sprintf("mat: SetCol length %d != rows %d", len(vals), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = vals[i]
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	data := make([]float64, len(m.data))
	copy(data, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: data}
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := Zeros(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range ri {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// MulVec returns the matrix-vector product a*x.
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", a.rows, a.cols, len(x)))
	}
	y := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulTVec returns the product of the transpose of a with x, i.e. a^T * x.
func MulTVec(a *Dense, x []float64) []float64 {
	if a.rows != len(x) {
		panic(fmt.Sprintf("mat: MulTVec dimension mismatch %dx%d^T * %d", a.rows, a.cols, len(x)))
	}
	y := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y
}

// Add returns a+b.
func Add(a, b *Dense) *Dense {
	checkSameDims("Add", a, b)
	c := a.Clone()
	for i, v := range b.data {
		c.data[i] += v
	}
	return c
}

// Sub returns a-b.
func Sub(a, b *Dense) *Dense {
	checkSameDims("Sub", a, b)
	c := a.Clone()
	for i, v := range b.data {
		c.data[i] -= v
	}
	return c
}

func checkSameDims(op string, a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

// Scale multiplies every element of m by s, in place.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// Frobenius returns the Frobenius norm of m.
func (m *Dense) Frobenius() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value of m.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// EqualApprox reports whether a and b have the same shape and all elements
// within tol of each other.
func EqualApprox(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// OuterProduct returns x * y^T as a len(x) x len(y) matrix.
func OuterProduct(x, y []float64) *Dense {
	m := Zeros(len(x), len(y))
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, yv := range y {
			row[j] = xv * yv
		}
	}
	return m
}

// ColMeans returns the mean of each column.
func (m *Dense) ColMeans() []float64 {
	means := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(m.rows)
	}
	return means
}

// CenterColumns subtracts each column's mean from the column, in place,
// and returns the means that were removed. This is the mean adjustment the
// paper requires before PCA (Section 4.2).
func (m *Dense) CenterColumns() []float64 {
	means := m.ColMeans()
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j := range row {
			row[j] -= means[j]
		}
	}
	return means
}

// String renders the matrix for debugging. Large matrices are elided.
func (m *Dense) String() string {
	const maxShow = 8
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dense(%dx%d)[\n", m.rows, m.cols)
	rshow := m.rows
	if rshow > maxShow {
		rshow = maxShow
	}
	cshow := m.cols
	if cshow > maxShow {
		cshow = maxShow
	}
	for i := 0; i < rshow; i++ {
		sb.WriteString("  ")
		for j := 0; j < cshow; j++ {
			fmt.Fprintf(&sb, "%10.4g ", m.At(i, j))
		}
		if cshow < m.cols {
			sb.WriteString("...")
		}
		sb.WriteString("\n")
	}
	if rshow < m.rows {
		sb.WriteString("  ...\n")
	}
	sb.WriteString("]")
	return sb.String()
}
