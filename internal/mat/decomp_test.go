package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// isOrthonormalCols reports whether the columns of m are orthonormal to tol.
func isOrthonormalCols(m *Dense, tol float64) bool {
	_, c := m.Dims()
	g := m.Gram()
	return EqualApprox(g, Identity(c), tol)
}

func TestQRReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 4 + rng.Intn(8)
		cols := 2 + rng.Intn(rows-1)
		a := randomDense(rng, rows, cols)
		q, r := QR(a)
		return EqualApprox(Mul(q, r), a, 1e-9) && isOrthonormalCols(q, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomDense(rng, 8, 5)
	_, r := QR(a)
	for i := 1; i < 5; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R(%d,%d) = %v, want 0 below diagonal", i, j, r.At(i, j))
			}
		}
	}
}

func TestQRSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDense(rng, 5, 5)
	q, r := QR(a)
	if !EqualApprox(Mul(q, r), a, 1e-9) {
		t.Fatal("square QR reconstruction failed")
	}
}

func TestQRRowsLessThanColsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rows < cols")
		}
	}()
	QR(Zeros(2, 3))
}

func TestSolveLSExact(t *testing.T) {
	// Square, well-conditioned: solution must be exact.
	a := NewDense(2, 2, []float64{2, 1, 1, 3})
	b := []float64{5, 10}
	x, err := SolveLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := MulVec(a, x)
	if !VecEqualApprox(got, b, 1e-10) {
		t.Fatalf("SolveLS residual: got %v want %v", got, b)
	}
}

func TestSolveLSOverdetermined(t *testing.T) {
	// Overdetermined consistent system: x=[1,2] recovered exactly.
	a := NewDense(4, 2, []float64{
		1, 0,
		0, 1,
		1, 1,
		2, -1,
	})
	xTrue := []float64{1, 2}
	b := MulVec(a, xTrue)
	x, err := SolveLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqualApprox(x, xTrue, 1e-10) {
		t.Fatalf("SolveLS = %v want %v", x, xTrue)
	}
}

func TestSolveLSNormalEquationsProperty(t *testing.T) {
	// Least-squares solution must satisfy A^T(Ax - b) = 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 8, 3)
		b := make([]float64, 8)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLS(a, b)
		if err != nil {
			return false
		}
		resid := SubVec(MulVec(a, x), b)
		grad := MulTVec(a, resid)
		return Norm2(grad) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLSSingular(t *testing.T) {
	a := NewDense(3, 2, []float64{1, 2, 2, 4, 3, 6}) // rank 1
	_, err := SolveLS(a, []float64{1, 2, 3})
	if err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestSolveSquare(t *testing.T) {
	a := NewDense(3, 3, []float64{4, 1, 0, 1, 3, 1, 0, 1, 2})
	xTrue := []float64{1, -1, 2}
	b := MulVec(a, xTrue)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqualApprox(x, xTrue, 1e-10) {
		t.Fatalf("Solve = %v want %v", x, xTrue)
	}
}

func TestSolveNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Solve(Zeros(3, 2), []float64{1, 2, 3})
}

func randomSymmetric(rng *rand.Rand, n int) *Dense {
	a := randomDense(rng, n, n)
	return Add(a, a.T())
}

func TestSymEigReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randomSymmetric(rng, n)
		vals, vecs, err := SymEig(a)
		if err != nil {
			return false
		}
		// a == V diag(vals) V^T
		d := Zeros(n, n)
		for i, v := range vals {
			d.Set(i, i, v)
		}
		recon := Mul(Mul(vecs, d), vecs.T())
		return EqualApprox(recon, a, 1e-8*(1+a.MaxAbs())) && isOrthonormalCols(vecs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigSortedDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomSymmetric(rng, 8)
	vals, _, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
}

func TestSymEigKnownValues(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewDense(2, 2, []float64{2, 1, 1, 2})
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues = %v want [3 1]", vals)
	}
	// A v = lambda v for each column.
	for k := 0; k < 2; k++ {
		v := vecs.Col(k)
		av := MulVec(a, v)
		for i := range av {
			if math.Abs(av[i]-vals[k]*v[i]) > 1e-10 {
				t.Fatalf("A v != lambda v for k=%d", k)
			}
		}
	}
}

func TestSymEigEigenvectorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		a := randomSymmetric(rng, n)
		vals, vecs, err := SymEig(a)
		if err != nil {
			return false
		}
		for k := 0; k < n; k++ {
			v := vecs.Col(k)
			av := MulVec(a, v)
			for i := range av {
				if math.Abs(av[i]-vals[k]*v[i]) > 1e-7*(1+a.MaxAbs()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigRejectsAsymmetric(t *testing.T) {
	a := NewDense(2, 2, []float64{1, 2, 3, 4})
	_, _, err := SymEig(a)
	if err != ErrNotSymmetric {
		t.Fatalf("expected ErrNotSymmetric, got %v", err)
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := Zeros(3, 3)
	a.Set(0, 0, 5)
	a.Set(1, 1, -2)
	a.Set(2, 2, 1)
	vals, _, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 1, -2}
	if !VecEqualApprox(vals, want, 1e-12) {
		t.Fatalf("vals = %v want %v", vals, want)
	}
}

func TestSVDReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 5 + rng.Intn(12)
		cols := 2 + rng.Intn(4)
		a := randomDense(rng, rows, cols)
		u, s, v, err := SVD(a)
		if err != nil {
			return false
		}
		// a == U diag(s) V^T
		us := u.Clone()
		for j := 0; j < cols; j++ {
			for i := 0; i < rows; i++ {
				us.Set(i, j, us.At(i, j)*s[j])
			}
		}
		return EqualApprox(Mul(us, v.T()), a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randomDense(rng, 20, 6)
	u, s, v, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !isOrthonormalCols(u, 1e-9) {
		t.Fatal("U columns not orthonormal")
	}
	if !isOrthonormalCols(v, 1e-9) {
		t.Fatal("V columns not orthonormal")
	}
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1]+1e-12 {
			t.Fatalf("singular values not sorted: %v", s)
		}
	}
	for _, sv := range s {
		if sv < 0 {
			t.Fatalf("negative singular value: %v", s)
		}
	}
}

func TestSVDMatchesEig(t *testing.T) {
	// Singular values of A are sqrt of eigenvalues of A^T A.
	rng := rand.New(rand.NewSource(31))
	a := randomDense(rng, 15, 5)
	_, s, _, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := SymEig(a.Gram())
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		ev := vals[i]
		if ev < 0 {
			ev = 0
		}
		if math.Abs(s[i]-math.Sqrt(ev)) > 1e-8*(1+s[0]) {
			t.Fatalf("s[%d]=%v but sqrt(eig)=%v", i, s[i], math.Sqrt(ev))
		}
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	u, s, v, err := SVD(Zeros(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, sv := range s {
		if sv != 0 {
			t.Fatalf("zero matrix singular values = %v", s)
		}
	}
	if u.Rows() != 4 || v.Rows() != 3 {
		t.Fatal("zero matrix SVD shape wrong")
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Two identical columns: second singular value ~0, reconstruction holds.
	a := NewDense(4, 2, []float64{1, 1, 2, 2, 3, 3, 4, 4})
	u, s, v, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if s[1] > 1e-10 {
		t.Fatalf("expected rank-1, got singular values %v", s)
	}
	us := u.Clone()
	for j := 0; j < 2; j++ {
		for i := 0; i < 4; i++ {
			us.Set(i, j, us.At(i, j)*s[j])
		}
	}
	if !EqualApprox(Mul(us, v.T()), a, 1e-9) {
		t.Fatal("rank-deficient reconstruction failed")
	}
}

func TestSVDLargeThin(t *testing.T) {
	// Shape of the paper's measurement matrices: 1008 x 49.
	rng := rand.New(rand.NewSource(99))
	a := randomDense(rng, 1008, 49)
	u, s, v, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	us := u.Clone()
	for j := 0; j < 49; j++ {
		for i := 0; i < 1008; i++ {
			us.Set(i, j, us.At(i, j)*s[j])
		}
	}
	diff := Sub(Mul(us, v.T()), a)
	if diff.Frobenius() > 1e-7*a.Frobenius() {
		t.Fatalf("1008x49 reconstruction error %v", diff.Frobenius())
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	if SqNorm(x) != 25 {
		t.Fatalf("SqNorm = %v", SqNorm(x))
	}
	if Dot(x, []float64{1, 2}) != 11 {
		t.Fatal("Dot wrong")
	}
	y := CloneVec(x)
	AddScaled(y, 2, []float64{1, 1})
	if y[0] != 5 || y[1] != 6 {
		t.Fatalf("AddScaled = %v", y)
	}
	n := Normalize(y)
	if math.Abs(Norm2(y)-1) > 1e-12 || math.Abs(n-math.Sqrt(61)) > 1e-12 {
		t.Fatalf("Normalize: norm %v vec %v", n, y)
	}
	z := make([]float64, 2)
	if Normalize(z) != 0 {
		t.Fatal("Normalize of zero vector must return 0")
	}
	if !VecEqualApprox(SubVec([]float64{5, 6}, []float64{1, 2}), []float64{4, 4}, 0) {
		t.Fatal("SubVec wrong")
	}
	if !VecEqualApprox(AddVec([]float64{5, 6}, []float64{1, 2}), []float64{6, 8}, 0) {
		t.Fatal("AddVec wrong")
	}
}
