package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomDense(rng *rand.Rand, rows, cols int) *Dense {
	m := Zeros(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestNewDenseDims(t *testing.T) {
	m := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	r, c := m.Dims()
	if r != 2 || c != 3 {
		t.Fatalf("Dims() = %d,%d want 2,3", r, c)
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 {
		t.Fatalf("element access wrong: %v %v", m.At(0, 0), m.At(1, 2))
	}
}

func TestNewDenseBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewDense(2, 2, []float64{1, 2, 3})
}

func TestNewDenseBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dimensions")
		}
	}()
	NewDense(0, 3, nil)
}

func TestAtOutOfRange(t *testing.T) {
	m := Zeros(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out of range index")
		}
	}()
	m.At(2, 0)
}

func TestSetGet(t *testing.T) {
	m := Zeros(3, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v want 7.5", got)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(4) at (%d,%d) = %v want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestRowColViews(t *testing.T) {
	m := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	row := m.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Fatalf("Row(1) = %v", row)
	}
	row[0] = 100 // Row is a copy; m must be unchanged.
	if m.At(1, 0) != 4 {
		t.Fatal("Row must return a copy")
	}
	rv := m.RowView(1)
	rv[0] = 100 // RowView aliases.
	if m.At(1, 0) != 100 {
		t.Fatal("RowView must alias the matrix")
	}
	col := m.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Fatalf("Col(2) = %v", col)
	}
}

func TestSetRowSetCol(t *testing.T) {
	m := Zeros(2, 3)
	m.SetRow(0, []float64{1, 2, 3})
	m.SetCol(2, []float64{9, 8})
	if m.At(0, 0) != 1 || m.At(0, 2) != 9 || m.At(1, 2) != 8 {
		t.Fatalf("SetRow/SetCol result wrong: %v", m)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewDense(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias the original")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	r, c := tr.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("T() dims = %d,%d", r, c)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("T() values wrong: %v", tr)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomDense(rng, 3+rng.Intn(5), 2+rng.Intn(5))
		return EqualApprox(m, m.T().T(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMulSmall(t *testing.T) {
	a := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDense(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := NewDense(2, 2, []float64{58, 64, 139, 154})
	if !EqualApprox(c, want, 1e-12) {
		t.Fatalf("Mul = %v want %v", c, want)
	}
}

func TestMulIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomDense(rng, 4, 4)
		return EqualApprox(Mul(m, Identity(4)), m, 1e-12) &&
			EqualApprox(Mul(Identity(4), m), m, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 3, 4)
		b := randomDense(rng, 4, 5)
		c := randomDense(rng, 5, 2)
		return EqualApprox(Mul(Mul(a, b), c), Mul(a, Mul(b, c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 4, 3)
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		xm := NewDense(3, 1, CloneVec(x))
		got := MulVec(a, x)
		want := Mul(a, xm)
		for i, v := range got {
			if math.Abs(v-want.At(i, 0)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMulTVecMatchesTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 4, 3)
		x := make([]float64, 4)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		return VecEqualApprox(MulTVec(a, x), MulVec(a.T(), x), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSub(t *testing.T) {
	a := NewDense(2, 2, []float64{1, 2, 3, 4})
	b := NewDense(2, 2, []float64{5, 6, 7, 8})
	if !EqualApprox(Add(a, b), NewDense(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Fatal("Add wrong")
	}
	if !EqualApprox(Sub(b, a), NewDense(2, 2, []float64{4, 4, 4, 4}), 0) {
		t.Fatal("Sub wrong")
	}
	// Originals unchanged.
	if a.At(0, 0) != 1 || b.At(0, 0) != 5 {
		t.Fatal("Add/Sub must not mutate inputs")
	}
}

func TestScale(t *testing.T) {
	a := NewDense(1, 3, []float64{1, -2, 3})
	a.Scale(2)
	if a.At(0, 1) != -4 {
		t.Fatalf("Scale wrong: %v", a)
	}
}

func TestFrobenius(t *testing.T) {
	a := NewDense(2, 2, []float64{3, 0, 0, 4})
	if got := a.Frobenius(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Frobenius = %v want 5", got)
	}
}

func TestMaxAbs(t *testing.T) {
	a := NewDense(2, 2, []float64{3, -7, 0, 4})
	if got := a.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %v want 7", got)
	}
}

func TestOuterProduct(t *testing.T) {
	m := OuterProduct([]float64{1, 2}, []float64{3, 4, 5})
	want := NewDense(2, 3, []float64{3, 4, 5, 6, 8, 10})
	if !EqualApprox(m, want, 0) {
		t.Fatalf("OuterProduct = %v", m)
	}
}

func TestColMeansAndCenter(t *testing.T) {
	m := NewDense(2, 2, []float64{1, 10, 3, 20})
	means := m.ColMeans()
	if means[0] != 2 || means[1] != 15 {
		t.Fatalf("ColMeans = %v", means)
	}
	removed := m.CenterColumns()
	if removed[0] != 2 || removed[1] != 15 {
		t.Fatalf("CenterColumns returned %v", removed)
	}
	after := m.ColMeans()
	if math.Abs(after[0]) > 1e-12 || math.Abs(after[1]) > 1e-12 {
		t.Fatalf("means after centering = %v, want zeros", after)
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomDense(rng, 6, 4)
		return EqualApprox(m.Gram(), Mul(m.T(), m), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualApproxShapeMismatch(t *testing.T) {
	if EqualApprox(Zeros(2, 2), Zeros(2, 3), 1) {
		t.Fatal("EqualApprox must reject shape mismatch")
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	big := Zeros(20, 20)
	if s := big.String(); s == "" {
		t.Fatal("String() empty")
	}
	small := NewDense(1, 1, []float64{3})
	if s := small.String(); s == "" {
		t.Fatal("String() empty")
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Mul(Zeros(2, 3), Zeros(2, 3))
}
