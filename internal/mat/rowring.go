package mat

import "fmt"

// RowRing is a fixed-capacity buffer of measurement rows with a fixed
// column count. Rows live in one flat preallocated slice, so a push is
// a plain copy into the next slot — no per-row allocation and nothing
// for the garbage collector to scan on a streaming hot path. It backs
// the sliding windows of the streaming detector backends.
type RowRing struct {
	data     []float64 // capacity*cols, row-major
	capacity int
	cols     int
	next     int
	count    int
}

// NewRowRing returns an empty ring holding up to capacity rows of cols
// values each.
func NewRowRing(capacity, cols int) *RowRing {
	return &RowRing{data: make([]float64, capacity*cols), capacity: capacity, cols: cols}
}

// Cap returns the ring's row capacity.
func (r *RowRing) Cap() int { return r.capacity }

// Len returns the number of rows currently buffered.
func (r *RowRing) Len() int { return r.count }

// Push appends a row, evicting the oldest when full.
func (r *RowRing) Push(row []float64) {
	if len(row) != r.cols {
		panic(fmt.Sprintf("mat: ring row length %d != %d", len(row), r.cols))
	}
	copy(r.data[r.next*r.cols:(r.next+1)*r.cols], row)
	r.next = (r.next + 1) % r.capacity
	if r.count < r.capacity {
		r.count++
	}
}

// Reset empties the ring without reallocating.
func (r *RowRing) Reset() {
	r.next = 0
	r.count = 0
}

// Matrix returns the buffered rows, oldest first, as a dense matrix:
// the two wrapped stripes of the flat buffer, copied in order. It
// returns nil when the ring is empty.
func (r *RowRing) Matrix() *Dense {
	if r.count == 0 {
		return nil
	}
	m := Zeros(r.count, r.cols)
	out := m.RawData()
	start := 0
	if r.count == r.capacity {
		start = r.next
	}
	tail := copy(out, r.data[start*r.cols:r.count*r.cols])
	copy(out[tail:], r.data[:start*r.cols])
	return m
}
