package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a solve encounters an (effectively) singular
// system.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// QR computes the thin QR decomposition of a (rows >= cols) using
// Householder reflections: a = q*r with q having orthonormal columns
// (rows x cols) and r upper triangular (cols x cols).
func QR(a *Dense) (q, r *Dense) {
	rows, cols := a.Dims()
	if rows < cols {
		panic(fmt.Sprintf("mat: QR requires rows >= cols, got %dx%d", rows, cols))
	}
	// Work on a copy; accumulate the full Q by applying reflectors to I.
	w := a.Clone()
	// Store reflectors to apply to identity later.
	vs := make([][]float64, 0, cols)
	for k := 0; k < cols; k++ {
		// Build the Householder vector for column k, rows k..rows-1.
		alpha := 0.0
		for i := k; i < rows; i++ {
			alpha += w.At(i, k) * w.At(i, k)
		}
		alpha = math.Sqrt(alpha)
		if w.At(k, k) > 0 {
			alpha = -alpha
		}
		v := make([]float64, rows)
		v[k] = w.At(k, k) - alpha
		for i := k + 1; i < rows; i++ {
			v[i] = w.At(i, k)
		}
		vnorm := Norm2(v[k:])
		if vnorm > 0 {
			for i := k; i < rows; i++ {
				v[i] /= vnorm
			}
			// Apply reflector H = I - 2vv^T to w (columns k..cols-1).
			for j := k; j < cols; j++ {
				var dot float64
				for i := k; i < rows; i++ {
					dot += v[i] * w.At(i, j)
				}
				for i := k; i < rows; i++ {
					w.Set(i, j, w.At(i, j)-2*dot*v[i])
				}
			}
		}
		vs = append(vs, v)
	}
	// r is the top cols x cols block of w.
	r = Zeros(cols, cols)
	for i := 0; i < cols; i++ {
		for j := i; j < cols; j++ {
			r.Set(i, j, w.At(i, j))
		}
	}
	// q = H_0 H_1 ... H_{cols-1} applied to the first cols columns of I.
	q = Zeros(rows, cols)
	for j := 0; j < cols; j++ {
		q.Set(j, j, 1)
	}
	for k := cols - 1; k >= 0; k-- {
		v := vs[k]
		for j := 0; j < cols; j++ {
			var dot float64
			for i := k; i < rows; i++ {
				dot += v[i] * q.At(i, j)
			}
			if dot == 0 {
				continue
			}
			for i := k; i < rows; i++ {
				q.Set(i, j, q.At(i, j)-2*dot*v[i])
			}
		}
	}
	return q, r
}

// SolveLS solves the least-squares problem min ||a*x - b||_2 for x using a
// QR decomposition. a must have rows >= cols and full column rank;
// ErrSingular is returned otherwise. This is the solver used for Fourier
// basis fitting and for the multi-flow anomaly estimate f = (Theta^T
// Theta)^-1 Theta^T y (Section 7.2).
func SolveLS(a *Dense, b []float64) ([]float64, error) {
	rows, cols := a.Dims()
	if len(b) != rows {
		panic(fmt.Sprintf("mat: SolveLS rhs length %d != rows %d", len(b), rows))
	}
	q, r := QR(a)
	// x = R^-1 Q^T b
	qtb := MulTVec(q, b)
	x := make([]float64, cols)
	for i := cols - 1; i >= 0; i-- {
		d := r.At(i, i)
		if math.Abs(d) < 1e-12*(1+r.MaxAbs()) {
			return nil, ErrSingular
		}
		s := qtb[i]
		for j := i + 1; j < cols; j++ {
			s -= r.At(i, j) * x[j]
		}
		x[i] = s / d
	}
	return x, nil
}

// Solve solves the square system a*x = b via QR. It returns ErrSingular for
// rank-deficient a.
func Solve(a *Dense, b []float64) ([]float64, error) {
	rows, cols := a.Dims()
	if rows != cols {
		panic(fmt.Sprintf("mat: Solve requires a square matrix, got %dx%d", rows, cols))
	}
	return SolveLS(a, b)
}
