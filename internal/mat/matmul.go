package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// This file holds the dense multiplication kernels behind Mul, MulInto and
// Gram. The kernels are tuned for the shapes the subspace method produces:
// tall measurement matrices (t ~ 1000 bins) times small square operators
// (m <= a few hundred links). Three levels are applied as the problem
// grows:
//
//  1. a k-unrolled streaming kernel that accumulates four B rows per pass
//     over the output row (good instruction-level parallelism, one pass
//     of memory traffic over C per four inner products);
//  2. column blocking so the active slice of B stays cache-resident when
//     the output is wide;
//  3. a goroutine fan-out over row stripes once the multiply is large
//     enough to amortize scheduling (MulParallelCutoff fused multiply-adds).

const (
	// mulColBlock is the number of output columns processed per blocked
	// pass; 256 columns of float64 (2 KiB per B row) keep four B rows and
	// the C row within L1.
	mulColBlock = 256
	// MulParallelCutoff is the fused multiply-add count above which the
	// kernels fan row stripes across goroutines. Below it the scheduling
	// overhead outweighs the parallelism.
	MulParallelCutoff = 1 << 20
)

// Mul returns the matrix product a*b.
func Mul(a, b *Dense) *Dense {
	c := Zeros(a.rows, b.cols)
	MulInto(c, a, b)
	return c
}

// MulInto computes a*b into the preallocated dst, overwriting its previous
// contents. dst must be a.rows x b.cols and must not alias a or b. It
// exists so hot paths (batched SPE, model refits) can reuse an output
// buffer instead of allocating one per call.
func MulInto(dst, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulInto dst is %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	flops := a.rows * a.cols * b.cols
	workers := parallelWorkers(flops)
	if workers <= 1 {
		mulStripe(dst, a, b, 0, a.rows)
		return
	}
	parallelRows(a.rows, workers, func(i0, i1 int) {
		mulStripe(dst, a, b, i0, i1)
	})
}

// mulStripe computes rows [i0,i1) of dst = a*b with the blocked,
// k-unrolled kernel. Distinct stripes touch disjoint rows of dst, so
// stripes may run concurrently.
func mulStripe(dst, a, b *Dense, i0, i1 int) {
	for j0 := 0; j0 < b.cols; j0 += mulColBlock {
		j1 := j0 + mulColBlock
		if j1 > b.cols {
			j1 = b.cols
		}
		for i := i0; i < i1; i++ {
			arow := a.data[i*a.cols : (i+1)*a.cols]
			crow := dst.data[i*dst.cols+j0 : i*dst.cols+j1]
			var k int
			for ; k+4 <= a.cols; k += 4 {
				a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := b.data[k*b.cols+j0 : k*b.cols+j1]
				b1 := b.data[(k+1)*b.cols+j0 : (k+1)*b.cols+j1]
				b2 := b.data[(k+2)*b.cols+j0 : (k+2)*b.cols+j1]
				b3 := b.data[(k+3)*b.cols+j0 : (k+3)*b.cols+j1]
				for j := range crow {
					crow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			for ; k < a.cols; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				brow := b.data[k*b.cols+j0 : k*b.cols+j1]
				for j := range crow {
					crow[j] += av * brow[j]
				}
			}
		}
	}
}

// Gram returns m^T * m, the (cols x cols) Gram matrix. For a mean-centered
// measurement matrix Y this is proportional to the covariance matrix. Only
// the upper triangle is accumulated (the product is symmetric) and tall
// inputs are reduced across row stripes in parallel.
//
// Unlike MulInto — where each output row is computed by exactly one
// goroutine in an order-independent way — Gram's parallel path sums
// per-stripe partial matrices, so the floating-point reduction order
// depends on the stripe count. The stripe count is therefore derived
// from the input shape alone (gramStripes), never from GOMAXPROCS:
// the same matrix produces bit-identical covariances — and downstream
// eigenvalues, ranks and thresholds — on any machine, preserving the
// package's seed-determinism guarantee.
func (m *Dense) Gram() *Dense {
	g := Zeros(m.cols, m.cols)
	flops := m.rows * m.cols * (m.cols + 1) / 2
	workers := gramStripes(flops)
	if workers <= 1 {
		gramStripe(g, m, 0, m.rows)
	} else {
		// Each worker accumulates a private partial Gram over its row
		// stripe; the partials sum into g afterwards (the reduction is
		// O(workers * cols^2), negligible next to the O(rows * cols^2)
		// accumulation).
		partials := make([]*Dense, workers)
		var wg sync.WaitGroup
		chunk := (m.rows + workers - 1) / workers
		for w := 0; w < workers; w++ {
			i0 := w * chunk
			i1 := i0 + chunk
			if i1 > m.rows {
				i1 = m.rows
			}
			if i0 >= i1 {
				break
			}
			p := Zeros(m.cols, m.cols)
			partials[w] = p
			wg.Add(1)
			go func(p *Dense, i0, i1 int) {
				defer wg.Done()
				gramStripe(p, m, i0, i1)
			}(p, i0, i1)
		}
		wg.Wait()
		for _, p := range partials {
			if p == nil {
				continue
			}
			for i, v := range p.data {
				g.data[i] += v
			}
		}
	}
	// Mirror the accumulated upper triangle into the lower.
	for a := 1; a < g.rows; a++ {
		for b := 0; b < a; b++ {
			g.data[a*g.cols+b] = g.data[b*g.cols+a]
		}
	}
	return g
}

// gramStripe accumulates the upper triangle of rows[i0:i1]^T * rows[i0:i1]
// into g.
func gramStripe(g, m *Dense, i0, i1 int) {
	for i := i0; i < i1; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for a, va := range row {
			if va == 0 {
				continue
			}
			grow := g.data[a*g.cols : (a+1)*g.cols]
			for b := a; b < len(row); b++ {
				grow[b] += va * row[b]
			}
		}
	}
}

// parallelWorkers returns how many goroutines a row-parallel kernel of
// the given fused multiply-add count should use: 1 below
// MulParallelCutoff or on a single CPU, otherwise up to GOMAXPROCS.
// Only safe for kernels whose result is independent of the stripe
// split (each output row written by one goroutine, like MulInto).
func parallelWorkers(flops int) int {
	procs := runtime.GOMAXPROCS(0)
	if procs <= 1 || flops < MulParallelCutoff {
		return 1
	}
	workers := flops / MulParallelCutoff
	if workers < 2 {
		workers = 2
	}
	if workers > procs {
		workers = procs
	}
	return workers
}

// gramStripes returns the partial-reduction stripe count for Gram: a
// pure function of the workload size (capped at 8) so the summation
// grouping — and thus the result's last bits — never varies with the
// host's core count.
func gramStripes(flops int) int {
	if flops < MulParallelCutoff {
		return 1
	}
	stripes := flops / MulParallelCutoff
	if stripes > 8 {
		stripes = 8
	}
	if stripes < 2 {
		stripes = 2
	}
	return stripes
}

// parallelRows splits [0,rows) into one contiguous stripe per worker and
// runs f on each stripe concurrently, returning when all complete.
func parallelRows(rows, workers int, f func(i0, i1 int)) {
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for i0 := 0; i0 < rows; i0 += chunk {
		i1 := i0 + chunk
		if i1 > rows {
			i1 = rows
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			f(i0, i1)
		}(i0, i1)
	}
	wg.Wait()
}
