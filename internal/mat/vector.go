package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(SqNorm(x)) }

// SqNorm returns the squared Euclidean norm of x. The paper's SPE statistic
// is the squared norm of the residual vector (Section 5.1).
func SqNorm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// AddScaled sets dst[i] += alpha*x[i] for all i.
func AddScaled(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("mat: AddScaled length mismatch %d vs %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// ScaleVec multiplies every element of x by alpha, in place.
func ScaleVec(x []float64, alpha float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// SubVec returns x-y as a new slice.
func SubVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: SubVec length mismatch %d vs %d", len(x), len(y)))
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - y[i]
	}
	return out
}

// AddVec returns x+y as a new slice.
func AddVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: AddVec length mismatch %d vs %d", len(x), len(y)))
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v + y[i]
	}
	return out
}

// Normalize scales x to unit Euclidean norm in place and returns the
// original norm. A zero vector is left unchanged and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	ScaleVec(x, 1/n)
	return n
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// VecEqualApprox reports whether x and y have equal length and all elements
// within tol.
func VecEqualApprox(x, y []float64, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i, v := range x {
		if math.Abs(v-y[i]) > tol {
			return false
		}
	}
	return true
}
