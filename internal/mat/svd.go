package mat

import (
	"fmt"
	"math"
	"sort"
)

const svdMaxSweeps = 60

// SVD computes the thin singular value decomposition of a (rows >= cols)
// using the one-sided Jacobi (Hestenes) method: a = U * diag(s) * V^T with
// U (rows x cols) having orthonormal columns where the corresponding
// singular value is nonzero, V (cols x cols) orthogonal, and s sorted
// descending.
//
// Columns of U associated with zero singular values are left as zero
// vectors; callers that need a complete orthonormal basis must extend them.
// The subspace method only consumes leading (nonzero) components.
func SVD(a *Dense) (u *Dense, s []float64, v *Dense, err error) {
	rows, cols := a.Dims()
	if rows < cols {
		panic(fmt.Sprintf("mat: SVD requires rows >= cols, got %dx%d", rows, cols))
	}
	w := a.Clone()
	v = Identity(cols)
	scale := w.MaxAbs()
	if scale == 0 {
		// Zero matrix: all singular values zero.
		return Zeros(rows, cols), make([]float64, cols), v, nil
	}
	const tol = 1e-14
	converged := false
	for sweep := 0; sweep < svdMaxSweeps && !converged; sweep++ {
		converged = true
		for p := 0; p < cols-1; p++ {
			for q := p + 1; q < cols; q++ {
				// alpha = ||w_p||^2, beta = ||w_q||^2, gamma = w_p . w_q
				var alpha, beta, gamma float64
				for i := 0; i < rows; i++ {
					wp := w.At(i, p)
					wq := w.At(i, q)
					alpha += wp * wp
					beta += wq * wq
					gamma += wp * wq
				}
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				converged = false
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				for i := 0; i < rows; i++ {
					wp := w.At(i, p)
					wq := w.At(i, q)
					w.Set(i, p, c*wp-sn*wq)
					w.Set(i, q, sn*wp+c*wq)
				}
				rotateCols(v, p, q, c, sn)
			}
		}
	}
	if !converged {
		return nil, nil, nil, ErrNoConvergence
	}
	// Extract singular values and left vectors, then sort descending.
	type col struct {
		sv  float64
		idx int
	}
	csort := make([]col, cols)
	for j := 0; j < cols; j++ {
		var n2 float64
		for i := 0; i < rows; i++ {
			n2 += w.At(i, j) * w.At(i, j)
		}
		csort[j] = col{math.Sqrt(n2), j}
	}
	sort.Slice(csort, func(i, j int) bool { return csort[i].sv > csort[j].sv })
	u = Zeros(rows, cols)
	s = make([]float64, cols)
	vOut := Zeros(cols, cols)
	for k, cs := range csort {
		s[k] = cs.sv
		if cs.sv > 0 {
			inv := 1 / cs.sv
			for i := 0; i < rows; i++ {
				u.Set(i, k, w.At(i, cs.idx)*inv)
			}
		}
		for i := 0; i < cols; i++ {
			vOut.Set(i, k, v.At(i, cs.idx))
		}
	}
	return u, s, vOut, nil
}
