package mat

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNotSymmetric is returned by SymEig when its input is not symmetric.
var ErrNotSymmetric = errors.New("mat: matrix is not symmetric")

// ErrNoConvergence is returned when an iterative decomposition fails to
// converge within its sweep budget. It should not occur for the matrix
// sizes this library targets.
var ErrNoConvergence = errors.New("mat: iteration did not converge")

const (
	jacobiMaxSweeps = 60
	symTol          = 1e-8
)

// SymEig computes the eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi method. It returns the eigenvalues sorted in
// descending order and a matrix whose columns are the corresponding
// orthonormal eigenvectors, so that a = V * diag(vals) * V^T.
//
// Computing all principal components of the link traffic matrix Y is
// equivalent to solving the symmetric eigenvalue problem for the
// covariance matrix Y^T Y (Section 7.1 of the paper).
func SymEig(a *Dense) (vals []float64, vecs *Dense, err error) {
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("mat: SymEig requires a square matrix, got %dx%d", n, c))
	}
	scale := a.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > symTol*scale {
				return nil, nil, ErrNotSymmetric
			}
		}
	}
	w := a.Clone()
	v := Identity(n)
	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		// Off-diagonal Frobenius norm: converged when negligible.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += 2 * w.At(i, j) * w.At(i, j)
			}
		}
		if math.Sqrt(off) <= 1e-14*scale*float64(n) {
			return extractEig(w, v)
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Rotation angle per Golub & Van Loan.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				cth := 1 / math.Sqrt(1+t*t)
				sth := t * cth
				rotateSym(w, p, q, cth, sth)
				rotateCols(v, p, q, cth, sth)
			}
		}
	}
	return nil, nil, ErrNoConvergence
}

// rotateSym applies the Jacobi rotation J^T w J in place, where J is the
// Givens rotation over (p,q) with cosine c and sine s.
func rotateSym(w *Dense, p, q int, c, s float64) {
	n := w.Rows()
	for i := 0; i < n; i++ {
		wip := w.At(i, p)
		wiq := w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj := w.At(p, j)
		wqj := w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
}

// rotateCols applies the rotation to columns p,q of v (v = v*J).
func rotateCols(v *Dense, p, q int, c, s float64) {
	n := v.Rows()
	for i := 0; i < n; i++ {
		vip := v.At(i, p)
		viq := v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func extractEig(w, v *Dense) ([]float64, *Dense, error) {
	n := w.Rows()
	type pair struct {
		val float64
		idx int
	}
	ps := make([]pair, n)
	for i := 0; i < n; i++ {
		ps[i] = pair{w.At(i, i), i}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].val > ps[j].val })
	vals := make([]float64, n)
	vecs := Zeros(n, n)
	for k, p := range ps {
		vals[k] = p.val
		for i := 0; i < n; i++ {
			vecs.Set(i, k, v.At(i, p.idx))
		}
	}
	return vals, vecs, nil
}
