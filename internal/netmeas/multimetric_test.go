package netmeas

import (
	"testing"

	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
)

// multiMetricFixture builds a stacked history (1008 bins) and stream
// (144 bins) on Abilene with two injected anomalies in the stream: a
// byte-volume spike (moves bytes and flow counts) at byteBin and a
// flow-count-only surge (a scan signature: flows move, bytes do not)
// at scanBin. Returns the stacked matrices, the routing matrix, and
// the spiked flow id.
func multiMetricFixture(t *testing.T, seed int64, byteBin, scanBin int) (history, stream, routing *mat.Dense, flow int) {
	t.Helper()
	const historyBins, streamBins = 1008, 144
	topo := topology.Abilene()
	cfg := traffic.DefaultConfig(seed)
	cfg.Bins = historyBins + streamBins
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	od := gen.Generate()
	flow = topo.FlowID(2, 9)
	if byteBin >= 0 {
		od.Set(historyBins+byteBin, flow, od.At(historyBins+byteBin, flow)+9e7)
	}
	ms, err := LinkMetrics(topo, od, MetricConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if scanBin >= 0 {
		// ~40 flows/MB baseline: 60k extra flows is a loud scan that
		// carries no byte volume at all.
		ms.InjectFlowCountAnomaly(topo, flow, historyBins+scanBin, 6e4)
	}
	stacked, err := ms.Stacked()
	if err != nil {
		t.Fatal(err)
	}
	links := topo.NumLinks()
	cols := 3 * links
	history = mat.NewDense(historyBins, cols, stacked.RawData()[:historyBins*cols])
	stream = mat.NewDense(streamBins, cols, stacked.RawData()[historyBins*cols:])
	return history, stream, topo.RoutingMatrix(), flow
}

func TestMultiMetricDetectsByteAndScanAnomalies(t *testing.T) {
	const byteBin, scanBin = 40, 100
	history, stream, routing, flow := multiMetricFixture(t, 71, byteBin, scanBin)
	d, err := NewMultiMetricDetector(history, routing, MultiMetricConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Stats(); got.Backend != "multiflow" || got.Links != stream.Cols() {
		t.Fatalf("stats = %+v", got)
	}
	alarms, err := d.ProcessBatch(stream)
	if err != nil {
		t.Fatal(err)
	}
	var sawByte, sawScan bool
	for _, a := range alarms {
		switch a.Seq {
		case byteBin:
			sawByte = true
			if a.Flow != flow {
				t.Fatalf("byte anomaly identified flow %d want %d", a.Flow, flow)
			}
			if a.Bytes < 4e7 {
				t.Fatalf("byte anomaly quantified at %v", a.Bytes)
			}
		case scanBin:
			sawScan = true
			if a.Flow != flow {
				t.Fatalf("scan identified flow %d want %d", a.Flow, flow)
			}
		}
	}
	if !sawByte {
		t.Fatalf("byte-volume anomaly not alarmed; alarms: %+v", alarms)
	}
	if !sawScan {
		t.Fatalf("flow-count-only scan not alarmed (the quorum=1 vote must catch single-metric anomalies); alarms: %+v", alarms)
	}
	if len(alarms) > 20 {
		t.Fatalf("too many alarms: %d", len(alarms))
	}
	if got := d.Stats().Processed; got != stream.Rows() {
		t.Fatalf("processed %d want %d", got, stream.Rows())
	}
}

func TestMultiMetricQuorumSuppressesSingleMetricAnomalies(t *testing.T) {
	const byteBin, scanBin = 40, 100
	history, stream, routing, _ := multiMetricFixture(t, 72, byteBin, scanBin)
	// Quorum 2: the byte spike moves bytes AND flow counts (a real
	// volume anomaly adds proportional flows), so it survives; the
	// flow-count-only scan has one vote and is suppressed.
	d, err := NewMultiMetricDetector(history, routing, MultiMetricConfig{Quorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	alarms, err := d.ProcessBatch(stream)
	if err != nil {
		t.Fatal(err)
	}
	var sawByte, sawScan bool
	for _, a := range alarms {
		switch a.Seq {
		case byteBin:
			sawByte = true
		case scanBin:
			sawScan = true
		}
	}
	if !sawByte {
		t.Fatalf("2-metric byte anomaly suppressed at quorum 2; alarms: %+v", alarms)
	}
	if sawScan {
		t.Fatalf("single-metric scan survived quorum 2; alarms: %+v", alarms)
	}
}

func TestMultiMetricSeedRefitAndValidation(t *testing.T) {
	history, stream, routing, _ := multiMetricFixture(t, 73, -1, -1)
	if _, err := NewMultiMetricDetector(history, routing, MultiMetricConfig{Quorum: 4}); err == nil {
		t.Fatal("quorum > metrics accepted")
	}
	if _, err := NewMultiMetricDetector(mat.Zeros(40, 7), routing, MultiMetricConfig{}); err == nil {
		t.Fatal("mis-sized history accepted")
	}
	d, err := NewMultiMetricDetector(history, routing, MultiMetricConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Metrics(); len(got) != 3 || got[0] != "bytes" {
		t.Fatalf("metrics = %v", got)
	}
	if _, err := d.ProcessBatch(mat.Zeros(4, 5)); err == nil {
		t.Fatal("mis-sized batch accepted")
	}
	if _, err := d.ProcessBatch(stream); err != nil {
		t.Fatal(err)
	}
	if err := d.Refit(); err != nil {
		t.Fatal(err)
	}
	d.WaitRefits()
	if err := d.TakeRefitError(); err != nil {
		t.Fatal(err)
	}
	if err := d.Seed(mat.Zeros(40, 7)); err == nil {
		t.Fatal("mis-sized seed accepted")
	}
	if err := d.Seed(history); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Processed; got != stream.Rows() {
		t.Fatalf("Seed reset processed counter to %d", got)
	}
}

func TestStackMatricesValidation(t *testing.T) {
	if _, err := StackMatrices(); err == nil {
		t.Fatal("empty stack accepted")
	}
	if _, err := StackMatrices(mat.Zeros(3, 2), mat.Zeros(4, 2)); err == nil {
		t.Fatal("row mismatch accepted")
	}
	s, err := StackMatrices(mat.NewDense(2, 1, []float64{1, 3}), mat.NewDense(2, 2, []float64{10, 20, 30, 40}))
	if err != nil {
		t.Fatal(err)
	}
	want := mat.NewDense(2, 3, []float64{1, 10, 20, 3, 30, 40})
	if !mat.EqualApprox(s, want, 0) {
		t.Fatalf("stacked = %v", s)
	}
}
