package netmeas

import (
	"fmt"
	"math"
	"math/rand"

	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
)

// LinkMetricSet holds alternative per-link measurement series beyond byte
// counts. Section 7.2 of the paper notes the subspace method applies to
// any link metric for which the L2 norm is meaningful, naming the number
// of IP flows per link and the average packet size; anomalies such as
// port scans move flow counts without moving bytes.
type LinkMetricSet struct {
	// Bytes is the bins x links byte-count matrix (same as
	// traffic.LinkLoads).
	Bytes *mat.Dense
	// FlowCounts is the bins x links count of active IP flows.
	FlowCounts *mat.Dense
	// MeanPacketSize is the bins x links average packet size in bytes.
	MeanPacketSize *mat.Dense
}

// MetricConfig parameterizes the flow-count and packet-size synthesis.
type MetricConfig struct {
	// FlowsPerMB is the expected number of active IP flows per megabyte
	// of OD traffic in a bin (default 40).
	FlowsPerMB float64
	// FlowCountNoise is the relative noise on flow counts (default 0.05).
	FlowCountNoise float64
	// BasePacketSize is the network-wide mean packet size in bytes
	// (default 800).
	BasePacketSize float64
	// PacketSizeJitter is the relative per-(bin,link) jitter (default
	// 0.03).
	PacketSizeJitter float64
	// Seed makes the synthesis deterministic.
	Seed int64
}

func (c *MetricConfig) fillDefaults() {
	if c.FlowsPerMB == 0 {
		c.FlowsPerMB = 40
	}
	if c.FlowCountNoise == 0 {
		c.FlowCountNoise = 0.05
	}
	if c.BasePacketSize == 0 {
		c.BasePacketSize = 800
	}
	if c.PacketSizeJitter == 0 {
		c.PacketSizeJitter = 0.03
	}
}

// LinkMetrics derives the alternative metric series from OD traffic: each
// OD flow contributes IP flows proportional to its bytes (so a volume
// anomaly moves flow counts on its path too), and the mean packet size
// wobbles around the base. A flow-count anomaly without a byte anomaly
// can be injected directly into the FlowCounts matrix afterwards.
func LinkMetrics(topo *topology.Topology, od *mat.Dense, cfg MetricConfig) (*LinkMetricSet, error) {
	cfg.fillDefaults()
	bins, flows := od.Dims()
	if flows != topo.NumFlows() {
		return nil, fmt.Errorf("netmeas: OD matrix has %d flows, topology %d", flows, topo.NumFlows())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	links := topo.NumLinks()
	bytes := mat.Zeros(bins, links)
	counts := mat.Zeros(bins, links)
	mps := mat.Zeros(bins, links)
	for b := 0; b < bins; b++ {
		odRow := od.RowView(b)
		byteRow := bytes.RowView(b)
		countRow := counts.RowView(b)
		for f, v := range odRow {
			if v <= 0 {
				continue
			}
			flowCount := v / 1e6 * cfg.FlowsPerMB
			for _, li := range topo.Route(f) {
				byteRow[li] += v
				countRow[li] += flowCount
			}
		}
		mpsRow := mps.RowView(b)
		for l := 0; l < links; l++ {
			countRow[l] = math.Max(0, countRow[l]*(1+cfg.FlowCountNoise*rng.NormFloat64()))
			mpsRow[l] = cfg.BasePacketSize * (1 + cfg.PacketSizeJitter*rng.NormFloat64())
		}
	}
	return &LinkMetricSet{Bytes: bytes, FlowCounts: counts, MeanPacketSize: mps}, nil
}

// InjectFlowCountAnomaly adds extra IP flows (without bytes) along one OD
// flow's path at one bin — the signature of a scan or DDoS with many
// small flows. Counts never go below zero.
func (s *LinkMetricSet) InjectFlowCountAnomaly(topo *topology.Topology, flow, bin int, extraFlows float64) {
	bins, _ := s.FlowCounts.Dims()
	if bin < 0 || bin >= bins {
		panic(fmt.Sprintf("netmeas: bin %d out of range %d", bin, bins))
	}
	row := s.FlowCounts.RowView(bin)
	for _, li := range topo.Route(flow) {
		row[li] = math.Max(0, row[li]+extraFlows)
	}
}
