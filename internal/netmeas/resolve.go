package netmeas

import (
	"fmt"
	"math/rand"
	"sort"

	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
)

// PrefixTable maps IPv4 destination prefixes to egress PoPs, standing in
// for the BGP/ISIS routing tables the paper uses for egress resolution
// (Section 3). Lookups are longest-prefix match.
type PrefixTable struct {
	entries []prefixEntry // sorted by mask length descending
}

type prefixEntry struct {
	addr    uint32
	maskLen int
	pop     int
}

// Add registers a prefix (address and mask length) mapping to a PoP.
func (t *PrefixTable) Add(addr uint32, maskLen, pop int) error {
	if maskLen < 0 || maskLen > 32 {
		return fmt.Errorf("netmeas: mask length %d out of [0,32]", maskLen)
	}
	if pop < 0 {
		return fmt.Errorf("netmeas: negative PoP %d", pop)
	}
	t.entries = append(t.entries, prefixEntry{addr: maskAddr(addr, maskLen), maskLen: maskLen, pop: pop})
	sort.SliceStable(t.entries, func(i, j int) bool { return t.entries[i].maskLen > t.entries[j].maskLen })
	return nil
}

// Len returns the number of installed prefixes.
func (t *PrefixTable) Len() int { return len(t.entries) }

func maskAddr(addr uint32, maskLen int) uint32 {
	if maskLen == 0 {
		return 0
	}
	return addr &^ (1<<(32-maskLen) - 1)
}

// Lookup returns the egress PoP for the address by longest-prefix match.
func (t *PrefixTable) Lookup(addr uint32) (pop int, ok bool) {
	for _, e := range t.entries {
		if maskAddr(addr, e.maskLen) == e.addr {
			return e.pop, true
		}
	}
	return 0, false
}

// UniformPrefixTable assigns prefixesPerPoP random /16 prefixes to every
// PoP of the topology, with a deterministic layout in seed. It models a
// routing table where customer address space is spread across the PoPs.
func UniformPrefixTable(topo *topology.Topology, prefixesPerPoP int, seed int64) (*PrefixTable, error) {
	if prefixesPerPoP <= 0 {
		return nil, fmt.Errorf("netmeas: prefixesPerPoP %d <= 0", prefixesPerPoP)
	}
	rng := rand.New(rand.NewSource(seed))
	t := &PrefixTable{}
	used := map[uint32]bool{}
	for pop := 0; pop < topo.NumPoPs(); pop++ {
		for k := 0; k < prefixesPerPoP; k++ {
			var p uint32
			for {
				p = uint32(rng.Intn(1<<16)) << 16 // random /16
				if !used[p] {
					used[p] = true
					break
				}
			}
			if err := t.Add(p, 16, pop); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// RawFlow is a prefix-level flow record as exported by a router: the
// ingress PoP is known from the collecting router; the egress PoP must be
// resolved from the destination address.
type RawFlow struct {
	IngressPoP int
	DstAddr    uint32
	Bin        int
	Bytes      float64
}

// SynthesizeRawFlows explodes an OD matrix into prefix-level raw flow
// records: each (bin, OD pair) cell is split uniformly across flowsPerOD
// random destination prefixes belonging to the destination PoP.
// Deterministic in seed.
func SynthesizeRawFlows(x *mat.Dense, topo *topology.Topology, table *PrefixTable, flowsPerOD int, seed int64) ([]RawFlow, error) {
	if flowsPerOD <= 0 {
		return nil, fmt.Errorf("netmeas: flowsPerOD %d <= 0", flowsPerOD)
	}
	// Collect each PoP's prefixes for address synthesis.
	byPoP := make([][]prefixEntry, topo.NumPoPs())
	for _, e := range table.entries {
		if e.pop >= len(byPoP) {
			return nil, fmt.Errorf("netmeas: table PoP %d outside topology (%d PoPs)", e.pop, topo.NumPoPs())
		}
		byPoP[e.pop] = append(byPoP[e.pop], e)
	}
	for pop, list := range byPoP {
		if len(list) == 0 {
			return nil, fmt.Errorf("netmeas: PoP %d has no prefixes", pop)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	bins, flows := x.Dims()
	if flows != topo.NumFlows() {
		return nil, fmt.Errorf("netmeas: OD matrix has %d flows, topology %d", flows, topo.NumFlows())
	}
	var out []RawFlow
	for b := 0; b < bins; b++ {
		row := x.RowView(b)
		for f := 0; f < flows; f++ {
			total := row[f]
			if total <= 0 {
				continue
			}
			o, d := topo.FlowEndpoints(f)
			share := total / float64(flowsPerOD)
			for k := 0; k < flowsPerOD; k++ {
				pe := byPoP[d][rng.Intn(len(byPoP[d]))]
				hostBits := 32 - pe.maskLen
				addr := pe.addr
				if hostBits > 0 {
					addr |= uint32(rng.Int63n(1 << hostBits))
				}
				out = append(out, RawFlow{IngressPoP: o, DstAddr: addr, Bin: b, Bytes: share})
			}
		}
	}
	return out, nil
}

// AggregateOD resolves every raw flow's egress PoP through the prefix
// table and re-aggregates the records into an OD matrix (bins x flows).
// Records whose destination does not match any prefix are counted in
// unresolved and excluded, mirroring the paper's treatment of
// unresolvable traffic.
func AggregateOD(flows []RawFlow, table *PrefixTable, topo *topology.Topology, bins int) (od *mat.Dense, unresolved int, err error) {
	if bins <= 0 {
		return nil, 0, fmt.Errorf("netmeas: bins %d <= 0", bins)
	}
	od = mat.Zeros(bins, topo.NumFlows())
	for _, rf := range flows {
		if rf.Bin < 0 || rf.Bin >= bins {
			return nil, 0, fmt.Errorf("netmeas: record bin %d out of range %d", rf.Bin, bins)
		}
		if rf.IngressPoP < 0 || rf.IngressPoP >= topo.NumPoPs() {
			return nil, 0, fmt.Errorf("netmeas: record ingress PoP %d out of range %d", rf.IngressPoP, topo.NumPoPs())
		}
		egress, ok := table.Lookup(rf.DstAddr)
		if !ok || egress >= topo.NumPoPs() {
			unresolved++
			continue
		}
		f := topo.FlowID(rf.IngressPoP, egress)
		od.Set(rf.Bin, f, od.At(rf.Bin, f)+rf.Bytes)
	}
	return od, unresolved, nil
}
