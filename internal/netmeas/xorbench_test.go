package netmeas

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"testing"
)

func benchMatrix(bins, links int) []float64 {
	rng := rand.New(rand.NewSource(9))
	amp := make([]float64, links)
	phase := make([]float64, links)
	for l := 0; l < links; l++ {
		amp[l] = 1e7 * (1 + rng.Float64())
		phase[l] = 2 * math.Pi * rng.Float64()
	}
	data := make([]float64, bins*links)
	for b := 0; b < bins; b++ {
		day := 2 * math.Pi * float64(b%144) / 144
		for l := 0; l < links; l++ {
			v := amp[l] * (1.2 + 0.8*math.Sin(day+phase[l]))
			data[b*links+l] = math.Round(v + amp[l]*0.05*rng.NormFloat64())
		}
	}
	return data
}

func BenchmarkXORDecodeOnly(b *testing.B) {
	const bins, links = 1008, 120
	data := benchMatrix(bins, links)
	for _, codec := range []Codec{CodecRaw, CodecXOR} {
		b.Run(codec.String(), func(b *testing.B) {
			var buf bytes.Buffer
			enc, err := NewBinaryEncoderFormat(&buf, links, WireFormat{Version: 2, Codec: codec, BatchBins: 64})
			if err != nil {
				b.Fatal(err)
			}
			for r := 0; r < bins; r++ {
				if err := enc.WriteFrame(data[r*links : (r+1)*links]); err != nil {
					b.Fatal(err)
				}
			}
			if err := enc.Flush(); err != nil {
				b.Fatal(err)
			}
			payload := buf.Bytes()
			pool := NewFrameBatchPool(64, links)
			rd := bytes.NewReader(payload)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rd.Reset(payload)
				dec, err := NewBinaryDecoder(rd)
				if err != nil {
					b.Fatal(err)
				}
				for {
					fb := pool.Get()
					rows, derr := dec.ReadBatch(fb)
					fb.Release()
					if rows == 0 || derr == io.EOF {
						break
					}
					if derr != nil {
						b.Fatal(derr)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N*bins)*1e9, "ns/bin")
		})
	}
}
