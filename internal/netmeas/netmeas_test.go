package netmeas

import (
	"context"
	"math"
	"testing"
	"time"

	"netanomaly/internal/mat"
	"netanomaly/internal/stats"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
)

func TestSamplingMethodString(t *testing.T) {
	if PeriodicSampling.String() != "periodic" || RandomSampling.String() != "random" {
		t.Fatal("method names wrong")
	}
	if SamplingMethod(9).String() == "" {
		t.Fatal("unknown method must still render")
	}
}

func TestNewFlowCollectorValidation(t *testing.T) {
	for _, r := range []float64{0, -1, 1.5} {
		if _, err := NewFlowCollector(RandomSampling, r, 1); err == nil {
			t.Fatalf("rate %v must be rejected", r)
		}
	}
}

func TestCollectBinUnbiased(t *testing.T) {
	c, err := NewFlowCollector(RandomSampling, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	const truth = 5e7
	n := 3000
	ests := make([]float64, n)
	for i := range ests {
		ests[i] = c.CollectBin(truth)
	}
	mean := stats.Mean(ests)
	if math.Abs(mean-truth)/truth > 0.01 {
		t.Fatalf("sampling estimate biased: mean %v truth %v", mean, truth)
	}
	// Relative std should match sqrt((1-p)/(p*N)) for N = truth/800.
	wantRel := math.Sqrt((1 - 0.01) / (0.01 * truth / 800))
	gotRel := stats.Std(ests) / truth
	if gotRel < wantRel/2 || gotRel > wantRel*2 {
		t.Fatalf("sampling std %v want ~%v", gotRel, wantRel)
	}
}

func TestPeriodicLowerVarianceThanRandom(t *testing.T) {
	per, _ := NewFlowCollector(PeriodicSampling, 0.01, 6)
	ran, _ := NewFlowCollector(RandomSampling, 0.01, 6)
	const truth = 2e7
	n := 2000
	pv := make([]float64, n)
	rv := make([]float64, n)
	for i := 0; i < n; i++ {
		pv[i] = per.CollectBin(truth)
		rv[i] = ran.CollectBin(truth)
	}
	if stats.Std(pv) >= stats.Std(rv) {
		t.Fatalf("periodic std %v should beat random std %v", stats.Std(pv), stats.Std(rv))
	}
}

func TestCollectBinEdgeCases(t *testing.T) {
	c, _ := NewFlowCollector(RandomSampling, 0.01, 7)
	if c.CollectBin(0) != 0 || c.CollectBin(-5) != 0 {
		t.Fatal("non-positive traffic must sample to zero")
	}
	// Tiny flows (under one packet) must not blow up.
	if v := c.CollectBin(10); v < 0 {
		t.Fatalf("tiny flow sampled to %v", v)
	}
}

func TestCollectMatrixShapeAndDeterminism(t *testing.T) {
	x := mat.Zeros(4, 3)
	x.Set(1, 1, 1e7)
	c1, _ := NewFlowCollector(PeriodicSampling, 1.0/250, 9)
	c2, _ := NewFlowCollector(PeriodicSampling, 1.0/250, 9)
	m1 := c1.CollectMatrix(x)
	m2 := c2.CollectMatrix(x)
	if !mat.EqualApprox(m1, m2, 0) {
		t.Fatal("collection must be deterministic in seed")
	}
	if m1.At(0, 0) != 0 || m1.At(1, 1) <= 0 {
		t.Fatal("collection output wrong")
	}
}

func TestSNMPPollerAccuracy(t *testing.T) {
	p, err := NewSNMPPoller(0.001, 11)
	if err != nil {
		t.Fatal(err)
	}
	y := mat.Zeros(100, 2)
	for b := 0; b < 100; b++ {
		y.Set(b, 0, 1e8)
		y.Set(b, 1, 2e8)
	}
	got := p.Poll(y)
	for b := 0; b < 100; b++ {
		if math.Abs(got.At(b, 0)-1e8)/1e8 > 0.01 {
			t.Fatalf("SNMP error too large at bin %d: %v", b, got.At(b, 0))
		}
	}
}

func TestSNMPPollerValidation(t *testing.T) {
	if _, err := NewSNMPPoller(-0.1, 1); err == nil {
		t.Fatal("negative error must be rejected")
	}
	if _, err := NewSNMPPoller(1.0, 1); err == nil {
		t.Fatal("unit error must be rejected")
	}
}

// TestSection3AgreementCheck reproduces the paper's data validation: the
// rescaled sampled flow byte counts agree with SNMP link counts within
// 1-5% on utilized links.
func TestSection3AgreementCheck(t *testing.T) {
	topo := topology.Abilene()
	cfg := traffic.DefaultConfig(21)
	cfg.Bins = 288
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := gen.Generate()
	// Sampled path: per-flow sampling, then aggregate to links.
	col, _ := NewFlowCollector(PeriodicSampling, 1.0/250, 22)
	sampledOD := col.CollectMatrix(x)
	sampledLinks := traffic.LinkLoads(topo, sampledOD)
	// SNMP path: true link loads with counter noise.
	snmp, _ := NewSNMPPoller(0.001, 23)
	snmpLinks := snmp.Poll(traffic.LinkLoads(topo, x))

	// The paper's check applies to links above 1 Mbps utilization:
	// 1 Mbps * 600 s / 8 = 7.5e7 bytes per 10-minute bin.
	const oneMbps = 7.5e7
	agr := Agreement(sampledLinks, snmpLinks, oneMbps)
	var covered int
	for l, a := range agr {
		if math.IsNaN(a) {
			continue
		}
		covered++
		if a > 0.05 {
			t.Fatalf("link %d agreement %.3f outside the paper's 1-5%% band", l, a)
		}
	}
	if covered == 0 {
		t.Fatal("agreement check did not cover any link")
	}
}

func TestAgreementShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Agreement(mat.Zeros(2, 2), mat.Zeros(3, 2), 0)
}

func TestAgreementNaNForIdleLinks(t *testing.T) {
	a := Agreement(mat.Zeros(5, 1), mat.Zeros(5, 1), 1)
	if !math.IsNaN(a[0]) {
		t.Fatal("idle link must report NaN")
	}
}

func TestPrefixTableLPM(t *testing.T) {
	var tbl PrefixTable
	if err := tbl.Add(0x0A000000, 8, 1); err != nil { // 10/8 -> PoP 1
		t.Fatal(err)
	}
	if err := tbl.Add(0x0A010000, 16, 2); err != nil { // 10.1/16 -> PoP 2
		t.Fatal(err)
	}
	if pop, ok := tbl.Lookup(0x0A010203); !ok || pop != 2 {
		t.Fatalf("longest match failed: %d %v", pop, ok)
	}
	if pop, ok := tbl.Lookup(0x0A020304); !ok || pop != 1 {
		t.Fatalf("short match failed: %d %v", pop, ok)
	}
	if _, ok := tbl.Lookup(0x0B000000); ok {
		t.Fatal("unmatched address must miss")
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestPrefixTableValidation(t *testing.T) {
	var tbl PrefixTable
	if err := tbl.Add(0, 33, 0); err == nil {
		t.Fatal("mask 33 must be rejected")
	}
	if err := tbl.Add(0, 8, -1); err == nil {
		t.Fatal("negative PoP must be rejected")
	}
}

func TestUniformPrefixTable(t *testing.T) {
	topo := topology.Abilene()
	tbl, err := UniformPrefixTable(topo, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 4*topo.NumPoPs() {
		t.Fatalf("prefix count = %d", tbl.Len())
	}
	if _, err := UniformPrefixTable(topo, 0, 1); err == nil {
		t.Fatal("zero prefixes must be rejected")
	}
}

// TestResolutionRoundTrip: OD matrix -> raw prefix flows -> egress
// resolution -> aggregated OD matrix must reproduce the original.
func TestResolutionRoundTrip(t *testing.T) {
	topo := topology.Abilene()
	cfg := traffic.DefaultConfig(33)
	cfg.Bins = 24
	gen, _ := traffic.NewGenerator(topo, cfg)
	x := gen.Generate()
	tbl, err := UniformPrefixTable(topo, 3, 34)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := SynthesizeRawFlows(x, topo, tbl, 5, 35)
	if err != nil {
		t.Fatal(err)
	}
	od, unresolved, err := AggregateOD(raw, tbl, topo, 24)
	if err != nil {
		t.Fatal(err)
	}
	if unresolved != 0 {
		t.Fatalf("unresolved = %d, all synthesized flows must resolve", unresolved)
	}
	if !mat.EqualApprox(od, x, 1e-6*(1+x.MaxAbs())) {
		t.Fatal("resolution round trip lost traffic")
	}
}

func TestAggregateODUnresolved(t *testing.T) {
	topo := topology.Abilene()
	var tbl PrefixTable
	tbl.Add(0x0A000000, 8, 0)
	flows := []RawFlow{
		{IngressPoP: 0, DstAddr: 0x0A000001, Bin: 0, Bytes: 100},
		{IngressPoP: 0, DstAddr: 0x0B000001, Bin: 0, Bytes: 50}, // misses
	}
	od, unresolved, err := AggregateOD(flows, &tbl, topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	if unresolved != 1 {
		t.Fatalf("unresolved = %d want 1", unresolved)
	}
	if od.At(0, topo.FlowID(0, 0)) != 100 {
		t.Fatal("resolved flow not aggregated")
	}
}

func TestAggregateODErrors(t *testing.T) {
	topo := topology.Abilene()
	var tbl PrefixTable
	tbl.Add(0, 0, 0)
	if _, _, err := AggregateOD([]RawFlow{{Bin: 5}}, &tbl, topo, 1); err == nil {
		t.Fatal("out-of-range bin must error")
	}
	if _, _, err := AggregateOD([]RawFlow{{IngressPoP: 99}}, &tbl, topo, 1); err == nil {
		t.Fatal("out-of-range PoP must error")
	}
	if _, _, err := AggregateOD(nil, &tbl, topo, 0); err == nil {
		t.Fatal("zero bins must error")
	}
}

func TestSynthesizeRawFlowsValidation(t *testing.T) {
	topo := topology.Abilene()
	tbl, _ := UniformPrefixTable(topo, 2, 1)
	if _, err := SynthesizeRawFlows(mat.Zeros(2, topo.NumFlows()), topo, tbl, 0, 1); err == nil {
		t.Fatal("flowsPerOD 0 must be rejected")
	}
	if _, err := SynthesizeRawFlows(mat.Zeros(2, 5), topo, tbl, 1, 1); err == nil {
		t.Fatal("wrong flow count must be rejected")
	}
}

func TestStreamDeliversAllBins(t *testing.T) {
	y := mat.Zeros(5, 2)
	for b := 0; b < 5; b++ {
		y.Set(b, 0, float64(b))
	}
	ch := Stream(context.Background(), y, 0)
	var got []LinkMeasurement
	for m := range ch {
		got = append(got, m)
	}
	if len(got) != 5 {
		t.Fatalf("received %d measurements", len(got))
	}
	for i, m := range got {
		if m.Bin != i || m.Loads[0] != float64(i) {
			t.Fatalf("measurement %d wrong: %+v", i, m)
		}
	}
}

func TestStreamCancellation(t *testing.T) {
	y := mat.Zeros(1000, 1)
	ctx, cancel := context.WithCancel(context.Background())
	ch := Stream(ctx, y, time.Hour) // would take forever without cancel
	cancel()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, open := <-ch:
			if !open {
				return // closed promptly
			}
		case <-deadline:
			t.Fatal("stream did not stop after cancellation")
		}
	}
}
