// Package netmeas simulates the measurement plane of Section 3: sampled
// flow collection (Cisco NetFlow-style periodic 1-in-250 sampling and
// Juniper-style random 1% sampling), SNMP link byte counters, the
// ingress/egress PoP resolution that turns prefix-level flow records into
// OD flows, and a streaming link-measurement source for online operation.
//
// The packet-level sampling processes are simulated statistically rather
// than per packet: for a bin carrying B bytes in N packets, an unbiased
// rescaled estimate B*(1+e) is produced where e has the standard deviation
// of the corresponding sampling estimator (binomial for random sampling,
// reduced by stratification for periodic sampling). This reproduces the
// 1-5% agreement with SNMP that the paper reports for utilized links
// without simulating billions of packets.
package netmeas

import (
	"fmt"
	"math"
	"math/rand"

	"netanomaly/internal/mat"
)

// SamplingMethod selects the packet sampling discipline.
type SamplingMethod int

const (
	// PeriodicSampling picks every k-th packet (Cisco NetFlow on Sprint:
	// every 250th). Stratification makes its estimator lower-variance
	// than random sampling at equal rate.
	PeriodicSampling SamplingMethod = iota
	// RandomSampling picks each packet independently with probability p
	// (Juniper sampling on Abilene: 1%).
	RandomSampling
)

// String returns the method name.
func (m SamplingMethod) String() string {
	switch m {
	case PeriodicSampling:
		return "periodic"
	case RandomSampling:
		return "random"
	default:
		return fmt.Sprintf("SamplingMethod(%d)", int(m))
	}
}

// periodicVarianceFactor scales the binomial standard deviation for
// periodic (stratified) sampling; systematic samples of smooth traffic
// estimate totals with roughly half the dispersion of Bernoulli samples.
const periodicVarianceFactor = 0.5

// FlowCollector simulates sampled flow export and rescaling.
type FlowCollector struct {
	// Method is the sampling discipline.
	Method SamplingMethod
	// Rate is the sampling probability (1.0/250 for Sprint, 0.01 for
	// Abilene).
	Rate float64
	// MeanPacketSize is the average packet size in bytes used to convert
	// byte counts to packet counts (default 800 if zero).
	MeanPacketSize float64

	rng *rand.Rand
}

// NewFlowCollector returns a collector with deterministic sampling noise.
func NewFlowCollector(method SamplingMethod, rate float64, seed int64) (*FlowCollector, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("netmeas: sampling rate %v out of (0,1]", rate)
	}
	return &FlowCollector{
		Method:         method,
		Rate:           rate,
		MeanPacketSize: 800,
		rng:            rand.New(rand.NewSource(seed)),
	}, nil
}

// CollectBin returns the rescaled byte estimate for one (flow, bin) cell
// carrying trueBytes.
func (c *FlowCollector) CollectBin(trueBytes float64) float64 {
	if trueBytes <= 0 {
		return 0
	}
	mps := c.MeanPacketSize
	if mps <= 0 {
		mps = 800
	}
	packets := trueBytes / mps
	if packets < 1 {
		packets = 1
	}
	// Relative std of the rescaled estimate: sqrt((1-p)/(p*N)).
	rel := math.Sqrt((1 - c.Rate) / (c.Rate * packets))
	if c.Method == PeriodicSampling {
		rel *= periodicVarianceFactor
	}
	est := trueBytes * (1 + rel*c.rng.NormFloat64())
	if est < 0 {
		est = 0
	}
	return est
}

// CollectMatrix applies sampling to every cell of the OD matrix
// (bins x flows) and returns the rescaled estimates.
func (c *FlowCollector) CollectMatrix(x *mat.Dense) *mat.Dense {
	t, n := x.Dims()
	out := mat.Zeros(t, n)
	for b := 0; b < t; b++ {
		src := x.RowView(b)
		dst := out.RowView(b)
		for f := 0; f < n; f++ {
			dst[f] = c.CollectBin(src[f])
		}
	}
	return out
}

// SNMPPoller simulates SNMP interface byte counters: complete counts with
// a small polling/rollover error.
type SNMPPoller struct {
	// RelError is the relative standard deviation of counter readings
	// (default 0.001 if zero: SNMP counts every byte; errors come from
	// poll timing jitter).
	RelError float64

	rng *rand.Rand
}

// NewSNMPPoller returns a poller with deterministic noise.
func NewSNMPPoller(relError float64, seed int64) (*SNMPPoller, error) {
	if relError < 0 || relError >= 1 {
		return nil, fmt.Errorf("netmeas: SNMP relative error %v out of [0,1)", relError)
	}
	return &SNMPPoller{RelError: relError, rng: rand.New(rand.NewSource(seed))}, nil
}

// Poll returns noisy link byte counts for the true link-load matrix
// (bins x links).
func (p *SNMPPoller) Poll(y *mat.Dense) *mat.Dense {
	rel := p.RelError
	if rel == 0 {
		rel = 0.001
	}
	t, m := y.Dims()
	out := mat.Zeros(t, m)
	for b := 0; b < t; b++ {
		src := y.RowView(b)
		dst := out.RowView(b)
		for l := 0; l < m; l++ {
			v := src[l] * (1 + rel*p.rng.NormFloat64())
			if v < 0 {
				v = 0
			}
			dst[l] = v
		}
	}
	return out
}

// Agreement compares sampled-and-rescaled link estimates against SNMP
// counts, returning the mean absolute relative difference per link,
// restricted to bins where the SNMP count is at least minBytes (the
// paper's check applies to links above 1 Mbps utilization). Links with no
// qualifying bins report NaN.
func Agreement(sampled, snmp *mat.Dense, minBytes float64) []float64 {
	t, m := sampled.Dims()
	t2, m2 := snmp.Dims()
	if t != t2 || m != m2 {
		panic(fmt.Sprintf("netmeas: Agreement shape mismatch %dx%d vs %dx%d", t, m, t2, m2))
	}
	out := make([]float64, m)
	for l := 0; l < m; l++ {
		var sum float64
		var n int
		for b := 0; b < t; b++ {
			ref := snmp.At(b, l)
			if ref < minBytes {
				continue
			}
			sum += math.Abs(sampled.At(b, l)-ref) / ref
			n++
		}
		if n == 0 {
			out[l] = math.NaN()
		} else {
			out[l] = sum / float64(n)
		}
	}
	return out
}
