package netmeas

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// CodecXOR batch payload: Gorilla-style XOR/delta compression of each
// link's load series, laid out link-major so every column compresses
// against its own history (traffic counts on one link are smooth; two
// adjacent links need not be). Per link, for a frame of n bins:
//
//	first   (8 bytes)          the link's first load, LE float64 bits
//	trail   (1 byte, n > 1)    trailing zero bits dropped from every XOR
//	width   (1 byte, n > 1)    bytes kept per subsequent load (0..8)
//	deltas  ((n-1)*width bytes) (bits[i] XOR bits[i-1]) >> trail, LE
//
// trail and width are the column's canonical envelope: with
// orAll = OR of all n-1 consecutive XORs, trail is orAll's trailing
// zero count and width the byte length of orAll >> trail. A constant
// column (orAll == 0) stores trail = width = 0 and no delta bytes, so
// an idle link costs 10 bytes per batch regardless of n. Unlike classic
// Gorilla the envelope is fixed for the whole column, which trades a
// little compression for a branch-free fixed-stride decode loop — the
// wire stays well under raw's 8 bytes/load on smooth series while
// decoding within the engine's ns/bin budget.
//
// The decoder re-derives the envelope from the delta bytes it reads and
// rejects a section whose declared (trail, width) is not the minimal
// one, so each batch has exactly one accepted encoding and the
// decode→re-encode round trip is byte-exact (the fuzz target's
// canonical-re-encode property).

// encodeXORFrame writes the XOR payload for rows (n bins x links,
// bin-major) into dst and returns the payload length. dst must have 8
// bytes of slack beyond the maximum payload: delta bytes are written
// with full 8-byte stores advanced by width.
func encodeXORFrame(dst []byte, rows []float64, n, links int) int {
	pos := 0
	for j := 0; j < links; j++ {
		prev := math.Float64bits(rows[j])
		binary.LittleEndian.PutUint64(dst[pos:], prev)
		pos += 8
		if n == 1 {
			continue
		}
		var orAll uint64
		p := prev
		for i := 1; i < n; i++ {
			b := math.Float64bits(rows[i*links+j])
			orAll |= b ^ p
			p = b
		}
		if orAll == 0 {
			dst[pos] = 0
			dst[pos+1] = 0
			pos += 2
			continue
		}
		trail := uint(bits.TrailingZeros64(orAll))
		width := (bits.Len64(orAll>>trail) + 7) / 8
		dst[pos] = byte(trail)
		dst[pos+1] = byte(width)
		pos += 2
		p = prev
		for i := 1; i < n; i++ {
			b := math.Float64bits(rows[i*links+j])
			binary.LittleEndian.PutUint64(dst[pos:], (b^p)>>trail)
			pos += width
			p = b
		}
	}
	return pos
}

// decodeXORFrame decodes an XOR payload of plen bytes from buf into dst
// (n bins x links, bin-major). buf must have 8 readable bytes beyond
// plen: delta bytes are read with full 8-byte loads and masked to
// width, so the slack is never interpreted. Structural violations — a
// section overrunning the payload, a non-canonical envelope, leftover
// bytes, a non-finite load — wrap ErrBinaryFormat.
//
// The wire is link-major and dst bin-major, so a naive section-at-a-
// time decode scatters every store a full row apart and the row cache
// lines fall out of L1 between revisits. Instead the sections are
// parsed a stripe of 8 links at a time and the stripe decodes in
// 16-bin chunks: within a chunk the 8 interleaved columns revisit the
// same 16 destination lines while they are still hot, and the 8
// independent XOR chains give the pipeline parallel work where one
// chain alone would serialize on its previous value.
//
// A width-w delta shifted up by trail can only flip bits in
// [trail, trail+8w). If some exponent bit outside that span is clear in
// a column's first value, no value in the column can reach the all-ones
// exponent of NaN/Inf — finiteness of the whole column follows from bin
// 0 and the chunked loop drops its per-value check. Ordinary counter
// data always qualifies: integral loads keep the deltas in the low
// mantissa bytes and the magnitudes nowhere near the exponent ceiling.
// A stripe with any unprovable column decodes through the per-value
// checked loop instead.
func decodeXORFrame(buf []byte, plen int, dst []float64, n, links int) error {
	const (
		stripe  = 8
		chunk   = 32
		expMask = 0x7ff0000000000000
	)
	src := buf[:plen]
	pos := 0
	for j0 := 0; j0 < links; j0 += stripe {
		jmax := j0 + stripe
		if jmax > links {
			jmax = links
		}
		// Section descriptors for the stripe's non-constant columns.
		var (
			kpos [stripe]int    // next delta byte
			wid  [stripe]int    // delta stride
			tr   [stripe]uint   // shift back up
			msk  [stripe]uint64 // keeps width bytes of an 8-byte load
			pvs  [stripe]uint64 // running value bits
			ors  [stripe]uint64 // OR of decoded deltas, for canonical checks
			col  [stripe]int    // column index in dst
			na   int
		)
		safe := true // every column's finiteness is proven by its first value
		for j := j0; j < jmax; j++ {
			if pos+8 > plen {
				return fmt.Errorf("netmeas: binary stream: xor section for link %d overruns payload: %w", j, ErrBinaryFormat)
			}
			prev := binary.LittleEndian.Uint64(src[pos:])
			pos += 8
			if prev&expMask == expMask {
				return fmt.Errorf("netmeas: binary stream: non-finite load at bin 0 link %d: %w", j, ErrBinaryFormat)
			}
			dst[j] = math.Float64frombits(prev)
			if n == 1 {
				continue
			}
			if pos+2 > plen {
				return fmt.Errorf("netmeas: binary stream: xor section for link %d overruns payload: %w", j, ErrBinaryFormat)
			}
			trail := uint(src[pos])
			width := int(src[pos+1])
			pos += 2
			if trail > 63 || width > 8 || (width == 0 && trail != 0) {
				return fmt.Errorf("netmeas: binary stream: xor section for link %d has invalid envelope (trail %d, width %d): %w", j, trail, width, ErrBinaryFormat)
			}
			if width == 0 {
				v := math.Float64frombits(prev)
				for i := 1; i < n; i++ {
					dst[i*links+j] = v
				}
				continue
			}
			need := (n - 1) * width
			if pos+need > plen {
				return fmt.Errorf("netmeas: binary stream: xor section for link %d overruns payload: %w", j, ErrBinaryFormat)
			}
			span := 8 * uint(width)
			affected := ^uint64(0) << trail
			mask := ^uint64(0)
			if span < 64 {
				affected = (uint64(1)<<span - 1) << trail
				mask = uint64(1)<<span - 1
			}
			if unaff := uint64(expMask) &^ affected; prev&unaff == unaff {
				safe = false
			}
			kpos[na], wid[na], tr[na], msk[na], pvs[na], col[na] = pos, width, trail, mask, prev, j
			na++
			pos += need
		}
		switch {
		case na == 0:
		case safe:
			for i0 := 1; i0 < n; i0 += chunk {
				i1 := i0 + chunk
				if i1 > n {
					i1 = n
				}
				for s := 0; s < na; s++ {
					k, w, t, m := kpos[s], wid[s], tr[s], msk[s]
					pv, or := pvs[s], ors[s]
					idx := i0*links + col[s]
					// 4x unrolled: the four loads and the delta OR tree
					// run off the critical path, leaving only the
					// one-cycle-per-value XOR chain serial.
					i := i0
					if w == 4 {
						// Integral counters land on width 4 almost
						// exclusively, and exact-width loads skip the
						// mask and halve the load traffic.
						for ; i+4 <= i1; i, k = i+4, k+16 {
							s0 := uint64(binary.LittleEndian.Uint32(buf[k:]))
							s1 := uint64(binary.LittleEndian.Uint32(buf[k+4:]))
							s2 := uint64(binary.LittleEndian.Uint32(buf[k+8:]))
							s3 := uint64(binary.LittleEndian.Uint32(buf[k+12:]))
							or |= s0 | s1 | s2 | s3
							p0 := (s0 << t) ^ pv
							p1 := (s1 << t) ^ p0
							p2 := (s2 << t) ^ p1
							p3 := (s3 << t) ^ p2
							dst[idx] = math.Float64frombits(p0)
							dst[idx+links] = math.Float64frombits(p1)
							dst[idx+2*links] = math.Float64frombits(p2)
							dst[idx+3*links] = math.Float64frombits(p3)
							idx += 4 * links
							pv = p3
						}
					}
					for ; i+4 <= i1; i, k = i+4, k+4*w {
						s0 := binary.LittleEndian.Uint64(buf[k:]) & m
						s1 := binary.LittleEndian.Uint64(buf[k+w:]) & m
						s2 := binary.LittleEndian.Uint64(buf[k+2*w:]) & m
						s3 := binary.LittleEndian.Uint64(buf[k+3*w:]) & m
						or |= s0 | s1 | s2 | s3
						p0 := (s0 << t) ^ pv
						p1 := (s1 << t) ^ p0
						p2 := (s2 << t) ^ p1
						p3 := (s3 << t) ^ p2
						dst[idx] = math.Float64frombits(p0)
						dst[idx+links] = math.Float64frombits(p1)
						dst[idx+2*links] = math.Float64frombits(p2)
						dst[idx+3*links] = math.Float64frombits(p3)
						idx += 4 * links
						pv = p3
					}
					for ; i < i1; i, k = i+1, k+w {
						stored := binary.LittleEndian.Uint64(buf[k:]) & m
						or |= stored
						pv = (stored << t) ^ pv
						dst[idx] = math.Float64frombits(pv)
						idx += links
					}
					kpos[s], pvs[s], ors[s] = k, pv, or
				}
			}
		default:
			for s := 0; s < na; s++ {
				k, w, t, m := kpos[s], wid[s], tr[s], msk[s]
				pv, or := pvs[s], ors[s]
				j := col[s]
				for i := 1; i < n; i++ {
					stored := binary.LittleEndian.Uint64(buf[k:]) & m
					k += w
					or |= stored
					pv = (stored << t) ^ pv
					if pv&expMask == expMask {
						return fmt.Errorf("netmeas: binary stream: non-finite load at bin %d link %d: %w", i, j, ErrBinaryFormat)
					}
					dst[i*links+j] = math.Float64frombits(pv)
				}
				ors[s] = or
			}
		}
		// Canonical-envelope checks, in the same order the encoder fixes
		// the envelope: all deltas zero must use width 0; trail must be
		// maximal (some shifted delta is odd); width must be minimal (the
		// top byte is used); and no delta may carry bits that the shift
		// back up would push past 64 (those bits could not round-trip).
		for s := 0; s < na; s++ {
			orAcc, trail, width, j := ors[s], tr[s], wid[s], col[s]
			switch {
			case orAcc == 0:
				return fmt.Errorf("netmeas: binary stream: xor section for link %d is all-zero but width %d > 0: %w", j, width, ErrBinaryFormat)
			case orAcc&1 == 0:
				return fmt.Errorf("netmeas: binary stream: xor section for link %d has non-maximal trail %d: %w", j, trail, ErrBinaryFormat)
			case orAcc>>(8*uint(width-1)) == 0:
				return fmt.Errorf("netmeas: binary stream: xor section for link %d has non-minimal width %d: %w", j, width, ErrBinaryFormat)
			case trail > 0 && orAcc>>(64-trail) != 0:
				return fmt.Errorf("netmeas: binary stream: xor section for link %d has deltas overflowing the 64-bit shift: %w", j, ErrBinaryFormat)
			}
		}
	}
	if pos != plen {
		return fmt.Errorf("netmeas: binary stream: %d trailing bytes after xor sections: %w", plen-pos, ErrBinaryFormat)
	}
	return nil
}
