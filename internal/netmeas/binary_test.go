package netmeas

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"netanomaly/internal/mat"
)

func testMatrix(bins, links int, seed int64) *mat.Dense {
	rng := rand.New(rand.NewSource(seed))
	y := mat.Zeros(bins, links)
	for i := 0; i < bins; i++ {
		for j := 0; j < links; j++ {
			y.Set(i, j, 1e6*rng.Float64())
		}
	}
	return y
}

func TestBinaryRoundTrip(t *testing.T) {
	y := testMatrix(97, 13, 1)
	var buf bytes.Buffer
	if err := WriteMatrixBinary(&buf, y); err != nil {
		t.Fatal(err)
	}
	wantLen := binaryHeaderSize + 97*(4+8*13)
	if buf.Len() != wantLen {
		t.Fatalf("encoded length %d, want %d", buf.Len(), wantLen)
	}
	got, err := ReadMatrixBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !mat.EqualApprox(got, y, 0) {
		t.Fatal("binary round trip is not bit-exact")
	}
}

func TestBinaryDecoderFrameByFrame(t *testing.T) {
	y := testMatrix(10, 5, 2)
	var buf bytes.Buffer
	if err := WriteMatrixBinary(&buf, y); err != nil {
		t.Fatal(err)
	}
	dec, err := NewBinaryDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Links() != 5 {
		t.Fatalf("Links() = %d, want 5", dec.Links())
	}
	row := make([]float64, 5)
	for i := 0; i < 10; i++ {
		if err := dec.ReadFrame(row); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		for j, v := range row {
			if v != y.At(i, j) {
				t.Fatalf("frame %d link %d: got %v want %v", i, j, v, y.At(i, j))
			}
		}
	}
	if err := dec.ReadFrame(row); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

func TestBinaryDecoderErrors(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		if err := WriteMatrixBinary(&buf, testMatrix(3, 4, 3)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	cases := []struct {
		name    string
		mangle  func([]byte) []byte
		wantFmt bool // expect ErrBinaryFormat (else io.ErrUnexpectedEOF)
	}{
		{"empty", func(b []byte) []byte { return nil }, false},
		{"short header", func(b []byte) []byte { return b[:7] }, false},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, true},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }, true},
		{"nonzero reserved", func(b []byte) []byte { b[6] = 1; return b }, true},
		{"zero links", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 0)
			return b
		}, true},
		{"oversized links", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], MaxBinaryLinks+1)
			return b
		}, true},
		{"truncated frame length", func(b []byte) []byte { return b[:binaryHeaderSize+2] }, false},
		{"truncated payload", func(b []byte) []byte { return b[:binaryHeaderSize+4+9] }, false},
		{"frame length mismatch", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[binaryHeaderSize:], 8*4+8)
			return b
		}, true},
		{"nan load", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[binaryHeaderSize+4:], math.Float64bits(math.NaN()))
			return b
		}, true},
		{"inf load", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[binaryHeaderSize+4:], math.Float64bits(math.Inf(1)))
			return b
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadMatrixBinary(bytes.NewReader(tc.mangle(good())))
			if err == nil {
				t.Fatal("decode succeeded on mangled stream")
			}
			if tc.wantFmt && !errors.Is(err, ErrBinaryFormat) {
				t.Fatalf("error %v does not wrap ErrBinaryFormat", err)
			}
			if !tc.wantFmt && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("error %v does not wrap io.ErrUnexpectedEOF", err)
			}
		})
	}
}

func TestBinaryEncoderRejectsNonFinite(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewBinaryEncoder(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteFrame([]float64{1, math.NaN(), 3}); err == nil {
		t.Fatal("encoder accepted NaN")
	}
	if err := enc.WriteFrame([]float64{1, 2}); err == nil {
		t.Fatal("encoder accepted mis-sized frame")
	}
}

// TestBinaryDecodeAllocFree is the zero-copy contract of the tentpole:
// once the decoder and its destination buffers exist, decoding a frame
// allocates nothing.
func TestBinaryDecodeAllocFree(t *testing.T) {
	const bins, links = 64, 120
	y := testMatrix(bins, links, 4)
	var buf bytes.Buffer
	if err := WriteMatrixBinary(&buf, y); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()

	dec, err := NewBinaryDecoder(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, links)
	rd := bytes.NewReader(payload)
	allocs := testing.AllocsPerRun(200, func() {
		if err := dec.ReadFrame(row); err == io.EOF {
			rd.Reset(payload[binaryHeaderSize:]) // skip header, rewind frames
			dec.r.Reset(rd)
		} else if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ReadFrame allocates %v per frame, want 0", allocs)
	}

	// Batched path: ReadBatch into a pooled full batch is also clean.
	pool := NewFrameBatchPool(bins, links)
	fb := pool.Get()
	defer fb.Release()
	rd2 := bytes.NewReader(payload)
	dec2, err := NewBinaryDecoder(rd2)
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		rows, err := dec2.ReadBatch(fb)
		if rows != bins || (err != nil && err != io.EOF) {
			t.Fatalf("rows=%d err=%v", rows, err)
		}
		if m := fb.Rows(rows); m.Rows() != bins {
			t.Fatal("full batch did not reuse the pooled matrix")
		}
		rd2.Reset(payload[binaryHeaderSize:])
		dec2.r.Reset(rd2)
	})
	if allocs != 0 {
		t.Fatalf("ReadBatch allocates %v per batch, want 0", allocs)
	}
}

func TestFrameBatchDoubleReleasePanics(t *testing.T) {
	pool := NewFrameBatchPool(4, 2)
	fb := pool.Get()
	fb.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	fb.Release()
}

func TestFrameBatchPartialRows(t *testing.T) {
	pool := NewFrameBatchPool(8, 3)
	fb := pool.Get()
	defer fb.Release()
	m := fb.Rows(5)
	if r, c := m.Dims(); r != 5 || c != 3 {
		t.Fatalf("partial batch dims %dx%d, want 5x3", r, c)
	}
	m.Set(4, 2, 42)
	if fb.full.At(4, 2) != 42 {
		t.Fatal("partial batch does not alias the pooled buffer")
	}
	gets, puts := pool.Counters()
	if gets != 1 || puts != 0 {
		t.Fatalf("counters gets=%d puts=%d, want 1,0", gets, puts)
	}
}

func TestStreamBinary(t *testing.T) {
	y := testMatrix(23, 6, 5)
	var buf bytes.Buffer
	if err := WriteMatrixBinary(&buf, y); err != nil {
		t.Fatal(err)
	}
	ch, errFn, err := StreamBinary(context.Background(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for meas := range ch {
		if meas.Bin != n {
			t.Fatalf("bin %d out of order (want %d)", meas.Bin, n)
		}
		for j, v := range meas.Loads {
			if v != y.At(n, j) {
				t.Fatalf("bin %d link %d: got %v want %v", n, j, v, y.At(n, j))
			}
		}
		n++
	}
	if n != 23 {
		t.Fatalf("streamed %d bins, want 23", n)
	}
	if err := errFn(); err != nil {
		t.Fatal(err)
	}

	// A truncated stream surfaces its decode error through errFn.
	trunc := buf.Bytes()[:buf.Len()-5]
	ch, errFn, err = StreamBinary(context.Background(), bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	n = 0
	for range ch {
		n++
	}
	if n != 22 {
		t.Fatalf("truncated stream yielded %d bins, want 22", n)
	}
	if err := errFn(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("errFn() = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestStreamBinaryCancel(t *testing.T) {
	y := testMatrix(1000, 4, 6)
	var buf bytes.Buffer
	if err := WriteMatrixBinary(&buf, y); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch, errFn, err := StreamBinary(ctx, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	<-ch
	cancel()
	for range ch { // drain until the producer notices
	}
	if err := errFn(); err != nil {
		t.Fatal(err)
	}
}
