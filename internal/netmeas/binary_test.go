package netmeas

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"testing"

	"netanomaly/internal/mat"
)

func testMatrix(bins, links int, seed int64) *mat.Dense {
	rng := rand.New(rand.NewSource(seed))
	y := mat.Zeros(bins, links)
	for i := 0; i < bins; i++ {
		for j := 0; j < links; j++ {
			y.Set(i, j, 1e6*rng.Float64())
		}
	}
	return y
}

func TestBinaryRoundTrip(t *testing.T) {
	y := testMatrix(97, 13, 1)
	var buf bytes.Buffer
	if err := WriteMatrixBinary(&buf, y); err != nil {
		t.Fatal(err)
	}
	wantLen := binaryHeaderSize + 97*(4+8*13)
	if buf.Len() != wantLen {
		t.Fatalf("encoded length %d, want %d", buf.Len(), wantLen)
	}
	got, err := ReadMatrixBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !mat.EqualApprox(got, y, 0) {
		t.Fatal("binary round trip is not bit-exact")
	}
}

func TestBinaryDecoderFrameByFrame(t *testing.T) {
	y := testMatrix(10, 5, 2)
	var buf bytes.Buffer
	if err := WriteMatrixBinary(&buf, y); err != nil {
		t.Fatal(err)
	}
	dec, err := NewBinaryDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Links() != 5 {
		t.Fatalf("Links() = %d, want 5", dec.Links())
	}
	row := make([]float64, 5)
	for i := 0; i < 10; i++ {
		if err := dec.ReadFrame(row); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		for j, v := range row {
			if v != y.At(i, j) {
				t.Fatalf("frame %d link %d: got %v want %v", i, j, v, y.At(i, j))
			}
		}
	}
	if err := dec.ReadFrame(row); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

func TestBinaryDecoderErrors(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		if err := WriteMatrixBinary(&buf, testMatrix(3, 4, 3)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	cases := []struct {
		name    string
		mangle  func([]byte) []byte
		wantFmt bool // expect ErrBinaryFormat (else io.ErrUnexpectedEOF)
	}{
		{"empty", func(b []byte) []byte { return nil }, false},
		{"short header", func(b []byte) []byte { return b[:7] }, false},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, true},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }, true},
		{"nonzero reserved", func(b []byte) []byte { b[6] = 1; return b }, true},
		{"zero links", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 0)
			return b
		}, true},
		{"oversized links", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], MaxBinaryLinks+1)
			return b
		}, true},
		{"truncated frame length", func(b []byte) []byte { return b[:binaryHeaderSize+2] }, false},
		{"truncated payload", func(b []byte) []byte { return b[:binaryHeaderSize+4+9] }, false},
		{"frame length mismatch", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[binaryHeaderSize:], 8*4+8)
			return b
		}, true},
		{"nan load", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[binaryHeaderSize+4:], math.Float64bits(math.NaN()))
			return b
		}, true},
		{"inf load", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[binaryHeaderSize+4:], math.Float64bits(math.Inf(1)))
			return b
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadMatrixBinary(bytes.NewReader(tc.mangle(good())))
			if err == nil {
				t.Fatal("decode succeeded on mangled stream")
			}
			if tc.wantFmt && !errors.Is(err, ErrBinaryFormat) {
				t.Fatalf("error %v does not wrap ErrBinaryFormat", err)
			}
			if !tc.wantFmt && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("error %v does not wrap io.ErrUnexpectedEOF", err)
			}
		})
	}
}

func TestBinaryEncoderRejectsNonFinite(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewBinaryEncoder(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteFrame([]float64{1, math.NaN(), 3}); err == nil {
		t.Fatal("encoder accepted NaN")
	}
	if err := enc.WriteFrame([]float64{1, 2}); err == nil {
		t.Fatal("encoder accepted mis-sized frame")
	}
}

// TestBinaryDecodeAllocFree is the zero-copy contract of the tentpole:
// once the decoder and its destination buffers exist, decoding a frame
// allocates nothing.
func TestBinaryDecodeAllocFree(t *testing.T) {
	const bins, links = 64, 120
	y := testMatrix(bins, links, 4)
	var buf bytes.Buffer
	if err := WriteMatrixBinary(&buf, y); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()

	dec, err := NewBinaryDecoder(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, links)
	rd := bytes.NewReader(payload)
	allocs := testing.AllocsPerRun(200, func() {
		if err := dec.ReadFrame(row); err == io.EOF {
			rd.Reset(payload[binaryHeaderSize:]) // skip header, rewind frames
			dec.r.Reset(rd)
		} else if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ReadFrame allocates %v per frame, want 0", allocs)
	}

	// Batched path: ReadBatch into a pooled full batch is also clean.
	pool := NewFrameBatchPool(bins, links)
	fb := pool.Get()
	defer fb.Release()
	rd2 := bytes.NewReader(payload)
	dec2, err := NewBinaryDecoder(rd2)
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		rows, err := dec2.ReadBatch(fb)
		if rows != bins || (err != nil && err != io.EOF) {
			t.Fatalf("rows=%d err=%v", rows, err)
		}
		if m := fb.Rows(rows); m.Rows() != bins {
			t.Fatal("full batch did not reuse the pooled matrix")
		}
		rd2.Reset(payload[binaryHeaderSize:])
		dec2.r.Reset(rd2)
	})
	if allocs != 0 {
		t.Fatalf("ReadBatch allocates %v per batch, want 0", allocs)
	}
}

func TestFrameBatchDoubleReleasePanics(t *testing.T) {
	pool := NewFrameBatchPool(4, 2)
	fb := pool.Get()
	fb.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	fb.Release()
}

func TestFrameBatchPartialRows(t *testing.T) {
	pool := NewFrameBatchPool(8, 3)
	fb := pool.Get()
	defer fb.Release()
	m := fb.Rows(5)
	if r, c := m.Dims(); r != 5 || c != 3 {
		t.Fatalf("partial batch dims %dx%d, want 5x3", r, c)
	}
	m.Set(4, 2, 42)
	if fb.full.At(4, 2) != 42 {
		t.Fatal("partial batch does not alias the pooled buffer")
	}
	gets, puts := pool.Counters()
	if gets != 1 || puts != 0 {
		t.Fatalf("counters gets=%d puts=%d, want 1,0", gets, puts)
	}
}

func TestStreamBinary(t *testing.T) {
	y := testMatrix(23, 6, 5)
	var buf bytes.Buffer
	if err := WriteMatrixBinary(&buf, y); err != nil {
		t.Fatal(err)
	}
	ch, errFn, err := StreamBinary(context.Background(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for meas := range ch {
		if meas.Bin != n {
			t.Fatalf("bin %d out of order (want %d)", meas.Bin, n)
		}
		for j, v := range meas.Loads {
			if v != y.At(n, j) {
				t.Fatalf("bin %d link %d: got %v want %v", n, j, v, y.At(n, j))
			}
		}
		n++
	}
	if n != 23 {
		t.Fatalf("streamed %d bins, want 23", n)
	}
	if err := errFn(); err != nil {
		t.Fatal(err)
	}

	// A truncated stream surfaces its decode error through errFn.
	trunc := buf.Bytes()[:buf.Len()-5]
	ch, errFn, err = StreamBinary(context.Background(), bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	n = 0
	for range ch {
		n++
	}
	if n != 22 {
		t.Fatalf("truncated stream yielded %d bins, want 22", n)
	}
	if err := errFn(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("errFn() = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestStreamBinaryCancel(t *testing.T) {
	y := testMatrix(1000, 4, 6)
	var buf bytes.Buffer
	if err := WriteMatrixBinary(&buf, y); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch, errFn, err := StreamBinary(ctx, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	<-ch
	cancel()
	for range ch { // drain until the producer notices
	}
	if err := errFn(); err != nil {
		t.Fatal(err)
	}
}

// --- wire format v2: batch frames and codec negotiation ---

// wholeByteMatrix renders integral byte counts with diurnal structure —
// the load shape the XOR codec is built for (integer-valued float64s
// share long runs of trailing zero bits, so consecutive XORs collapse).
func wholeByteMatrix(bins, links int, seed int64) *mat.Dense {
	rng := rand.New(rand.NewSource(seed))
	y := mat.Zeros(bins, links)
	for j := 0; j < links; j++ {
		base := 2e6 * (1 + rng.Float64())
		for i := 0; i < bins; i++ {
			day := 2 * math.Pi * float64(i%144) / 144
			v := base * (1.2 + 0.8*math.Sin(day)) * (1 + 0.05*rng.NormFloat64())
			y.Set(i, j, math.Round(v))
		}
	}
	return y
}

func TestBinaryV2RoundTrip(t *testing.T) {
	for _, codec := range []Codec{CodecRaw, CodecXOR} {
		for _, tc := range []struct{ bins, links, cap int }{
			{1, 1, 1},    // minimal
			{1, 5, 64},   // single short frame
			{64, 5, 64},  // exactly one full frame
			{97, 13, 16}, // six full frames + one short
			{96, 13, 16}, // full frames only, no trailer
			{5, 3, 4},    // capacity smaller than default
		} {
			name := fmt.Sprintf("%s/%dx%d cap %d", codec, tc.bins, tc.links, tc.cap)
			t.Run(name, func(t *testing.T) {
				y := testMatrix(tc.bins, tc.links, 7)
				format := WireFormat{Version: BinaryVersion2, Codec: codec, BatchBins: tc.cap}
				var buf bytes.Buffer
				if err := WriteMatrixBinaryFormat(&buf, y, format); err != nil {
					t.Fatal(err)
				}
				if codec == CodecRaw {
					frames := (tc.bins + tc.cap - 1) / tc.cap
					if want := binaryHeaderSize + frames*8 + 8*tc.bins*tc.links; buf.Len() != want {
						t.Fatalf("encoded length %d, want %d", buf.Len(), want)
					}
				}
				dec, err := NewBinaryDecoder(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				if dec.Version() != 2 || dec.Codec() != codec || dec.BatchBins() != tc.cap {
					t.Fatalf("sniffed format %+v, want v2 %s x%d", dec.Format(), codec, tc.cap)
				}
				got, err := ReadMatrixBinary(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				if !mat.EqualApprox(got, y, 0) {
					t.Fatal("v2 round trip is not bit-exact")
				}
				// Canonical per (version, codec, capacity): re-encoding the
				// decoded matrix under the sniffed format reproduces the
				// stream byte for byte.
				var re bytes.Buffer
				if err := WriteMatrixBinaryFormat(&re, got, dec.Format()); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(re.Bytes(), buf.Bytes()) {
					t.Fatal("v2 stream is not canonical under its own format")
				}
			})
		}
	}
}

// TestBinaryV2XORCompressesIntegralCounts pins the codec's reason to
// exist: on integral byte counts (what SNMP-style counters carry) the
// XOR payload runs well under raw's 8 bytes per load, while arbitrary
// full-precision noise stays near raw (the codec never inflates past
// its declared envelope bound).
func TestBinaryV2XORCompressesIntegralCounts(t *testing.T) {
	const bins, links, cap = 288, 40, 64
	smooth := wholeByteMatrix(bins, links, 11)
	var raw, xor bytes.Buffer
	if err := WriteMatrixBinaryFormat(&raw, smooth, WireFormat{Version: 2, Codec: CodecRaw, BatchBins: cap}); err != nil {
		t.Fatal(err)
	}
	if err := WriteMatrixBinaryFormat(&xor, smooth, WireFormat{Version: 2, Codec: CodecXOR, BatchBins: cap}); err != nil {
		t.Fatal(err)
	}
	if ratio := float64(raw.Len()) / float64(xor.Len()); ratio < 2 {
		t.Fatalf("xor compresses integral counts only %.2fx vs raw (%d vs %d bytes), want >= 2x", ratio, xor.Len(), raw.Len())
	}
	got, err := ReadMatrixBinary(bytes.NewReader(xor.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !mat.EqualApprox(got, smooth, 0) {
		t.Fatal("xor decode of integral counts is not bit-exact")
	}
	// A constant (idle) link costs a fixed 10 bytes per batch section.
	idle := mat.Zeros(cap, 2)
	var idleBuf bytes.Buffer
	if err := WriteMatrixBinaryFormat(&idleBuf, idle, WireFormat{Version: 2, Codec: CodecXOR, BatchBins: cap}); err != nil {
		t.Fatal(err)
	}
	if want := binaryHeaderSize + 8 + 2*10; idleBuf.Len() != want {
		t.Fatalf("idle-link batch is %d bytes, want %d", idleBuf.Len(), want)
	}
}

func TestBinaryV2ReadCalls(t *testing.T) {
	const bins, links, cap = 200, 7, 64
	y := testMatrix(bins, links, 8)
	var v1, v2 bytes.Buffer
	if err := WriteMatrixBinary(&v1, y); err != nil {
		t.Fatal(err)
	}
	if err := WriteMatrixBinaryFormat(&v2, y, WireFormat{Version: 2, BatchBins: cap}); err != nil {
		t.Fatal(err)
	}
	count := func(payload []byte) int64 {
		dec, err := NewBinaryDecoder(bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		pool := NewFrameBatchPool(cap, links)
		for {
			fb := pool.Get()
			_, err := dec.ReadBatch(fb)
			fb.Release()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		return dec.ReadCalls()
	}
	// v1: header + 2 per bin + the EOF probe; v2: header + 2 per batch
	// frame (200 bins = 3 full + 1 short) + the EOF probe.
	if got, want := count(v1.Bytes()), int64(1+2*bins+1); got != want {
		t.Fatalf("v1 stream issued %d reads, want %d", got, want)
	}
	if got, want := count(v2.Bytes()), int64(1+2*4+1); got != want {
		t.Fatalf("v2 stream issued %d reads, want %d", got, want)
	}
}

func TestBinaryV2DecoderErrors(t *testing.T) {
	const bins, links, cap = 40, 4, 16
	encode := func(codec Codec) []byte {
		var buf bytes.Buffer
		if err := WriteMatrixBinaryFormat(&buf, testMatrix(bins, links, 9), WireFormat{Version: 2, Codec: codec, BatchBins: cap}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	frameHdr := binaryHeaderSize // offset of the first batch frame header
	cases := []struct {
		name    string
		codec   Codec
		mangle  func([]byte) []byte
		wantFmt bool // else io.ErrUnexpectedEOF
	}{
		{"bad codec byte", CodecRaw, func(b []byte) []byte { b[5] = 7; return b }, true},
		{"zero batch capacity", CodecRaw, func(b []byte) []byte { b[6], b[7] = 0, 0; return b }, true},
		{"oversized batch capacity", CodecRaw, func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[6:8], MaxBatchBins+1)
			return b
		}, true},
		{"truncated batch header", CodecRaw, func(b []byte) []byte { return b[:frameHdr+3] }, false},
		{"truncated batch payload", CodecRaw, func(b []byte) []byte { return b[:frameHdr+8+11] }, false},
		{"zero bin count", CodecRaw, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[frameHdr:], 0)
			return b
		}, true},
		{"bin count beyond capacity", CodecRaw, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[frameHdr:], cap+1)
			return b
		}, true},
		{"raw payload length mismatch", CodecRaw, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[frameHdr+4:], uint32(8*cap*links+8))
			return b
		}, true},
		{"nan load in raw batch", CodecRaw, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[frameHdr+8:], math.Float64bits(math.NaN()))
			return b
		}, true},
		{"xor payload overrun", CodecXOR, func(b []byte) []byte {
			// Shrink the declared payload so the last section overruns.
			plen := binary.LittleEndian.Uint32(b[frameHdr+4:])
			binary.LittleEndian.PutUint32(b[frameHdr+4:], plen-1)
			return b[:len(b)-1]
		}, true},
		{"nan first load in xor section", CodecXOR, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[frameHdr+8:], math.Float64bits(math.NaN()))
			return b
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadMatrixBinary(bytes.NewReader(tc.mangle(encode(tc.codec))))
			if err == nil {
				t.Fatal("decode succeeded on mangled v2 stream")
			}
			if tc.wantFmt && !errors.Is(err, ErrBinaryFormat) {
				t.Fatalf("error %v does not wrap ErrBinaryFormat", err)
			}
			if !tc.wantFmt && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("error %v does not wrap io.ErrUnexpectedEOF", err)
			}
		})
	}
}

// TestBinaryV2FrameAfterShortRejected pins the canonical framing rule:
// only the final batch frame may carry fewer than the header's capacity,
// so any frame following a short one is structural corruption.
func TestBinaryV2FrameAfterShortRejected(t *testing.T) {
	const links, cap = 3, 8
	y := testMatrix(4, links, 10) // one short frame (4 < 8)
	var buf bytes.Buffer
	if err := WriteMatrixBinaryFormat(&buf, y, WireFormat{Version: 2, BatchBins: cap}); err != nil {
		t.Fatal(err)
	}
	// Append the same short frame again: bins would still be rectangular
	// and finite, so only the framing rule can reject it.
	stream := append(buf.Bytes(), buf.Bytes()[binaryHeaderSize:]...)
	_, err := ReadMatrixBinary(bytes.NewReader(stream))
	if !errors.Is(err, ErrBinaryFormat) {
		t.Fatalf("frame after short frame: got %v, want ErrBinaryFormat", err)
	}
}

func TestBinaryV2NonCanonicalXOREnvelopeRejected(t *testing.T) {
	const links, cap = 1, 4
	y := mat.NewDense(4, 1, []float64{2, 3, 2, 3}) // varying column
	var buf bytes.Buffer
	if err := WriteMatrixBinaryFormat(&buf, y, WireFormat{Version: 2, Codec: CodecXOR, BatchBins: cap}); err != nil {
		t.Fatal(err)
	}
	canonical := buf.Bytes()
	section := binaryHeaderSize + 8 // skip stream header + batch frame header
	trail, width := canonical[section+8], canonical[section+9]
	if width == 0 {
		t.Fatal("test column unexpectedly constant")
	}
	widen := append([]byte(nil), canonical...)
	// Re-encode the section with width+1: same values, fatter deltas —
	// a valid-looking but non-minimal envelope the decoder must refuse.
	old := int(width) * 3 // three deltas
	var fat []byte
	fat = append(fat, widen[:section+8]...)
	fat = append(fat, trail, width+1)
	deltas := canonical[section+10 : section+10+old]
	for i := 0; i < 3; i++ {
		fat = append(fat, deltas[i*int(width):(i+1)*int(width)]...)
		fat = append(fat, 0) // widened top byte
	}
	binary.LittleEndian.PutUint32(fat[binaryHeaderSize+4:], uint32(len(fat)-binaryHeaderSize-8))
	_, err := ReadMatrixBinary(bytes.NewReader(fat))
	if !errors.Is(err, ErrBinaryFormat) {
		t.Fatalf("non-minimal width accepted: %v", err)
	}
	// All-zero deltas with width > 0 must also be refused (the canonical
	// encoding of a constant column is width = 0, no delta bytes).
	constY := mat.NewDense(4, 1, []float64{5, 5, 5, 5})
	var constBuf bytes.Buffer
	if err := WriteMatrixBinaryFormat(&constBuf, constY, WireFormat{Version: 2, Codec: CodecXOR, BatchBins: cap}); err != nil {
		t.Fatal(err)
	}
	cb := constBuf.Bytes()
	bloat := append([]byte(nil), cb[:section+8]...)
	bloat = append(bloat, 0, 1, 0, 0, 0) // trail 0, width 1, three zero deltas
	binary.LittleEndian.PutUint32(bloat[binaryHeaderSize+4:], uint32(len(bloat)-binaryHeaderSize-8))
	_, err = ReadMatrixBinary(bytes.NewReader(bloat))
	if !errors.Is(err, ErrBinaryFormat) {
		t.Fatalf("all-zero deltas with width 1 accepted: %v", err)
	}
}

func TestBinaryWireFormatValidation(t *testing.T) {
	var buf bytes.Buffer
	cases := []WireFormat{
		{Version: 3},                              // unknown version
		{Version: 1, Codec: CodecXOR},             // v1 has no codec byte
		{Version: 1, BatchBins: 4},                // v1 has no batch framing
		{Version: 2, Codec: Codec(9)},             // unknown codec
		{Version: 2, BatchBins: MaxBatchBins + 1}, // capacity out of range
		{Version: 2, BatchBins: -1},               // negative capacity
	}
	for _, f := range cases {
		if _, err := NewBinaryEncoderFormat(&buf, 4, f); err == nil {
			t.Fatalf("encoder accepted invalid format %+v", f)
		}
	}
	// Oversized batch frame: capacity x links beyond the frame byte cap.
	if _, err := NewBinaryEncoderFormat(&buf, MaxBinaryLinks, WireFormat{Version: 2, BatchBins: MaxBatchBins}); err == nil {
		t.Fatal("encoder accepted a batch frame beyond maxBatchFrameBytes")
	}
}

func TestBinaryV2EncoderFlush(t *testing.T) {
	const links, cap = 3, 8
	var buf bytes.Buffer
	enc, err := NewBinaryEncoderFormat(&buf, links, WireFormat{Version: 2, BatchBins: cap})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteFrame([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	headerOnly := buf.Len()
	if headerOnly != binaryHeaderSize {
		t.Fatalf("v2 encoder wrote %d bytes before Flush, want just the %d-byte header", headerOnly, binaryHeaderSize)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	afterFlush := buf.Len()
	if afterFlush == headerOnly {
		t.Fatal("Flush emitted nothing for a pending bin")
	}
	if err := enc.Flush(); err != nil { // idempotent: nothing pending
		t.Fatal(err)
	}
	if buf.Len() != afterFlush {
		t.Fatal("second Flush emitted bytes with nothing pending")
	}
	got, err := ReadMatrixBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 1 || got.At(0, 2) != 3 {
		t.Fatalf("flushed stream decoded to %dx%d", got.Rows(), got.Cols())
	}
}

// TestBinaryV2ReadFrameInterop drives a v2 batch-framed stream through
// the per-bin ReadFrame API (what StreamBinary uses) and through a
// ReadFrame/ReadBatch mix: bins must arrive in order with none lost at
// the batch boundaries.
func TestBinaryV2ReadFrameInterop(t *testing.T) {
	const bins, links, cap = 37, 5, 8
	y := testMatrix(bins, links, 12)
	var buf bytes.Buffer
	if err := WriteMatrixBinaryFormat(&buf, y, WireFormat{Version: 2, Codec: CodecXOR, BatchBins: cap}); err != nil {
		t.Fatal(err)
	}
	dec, err := NewBinaryDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, links)
	for i := 0; i < bins; i++ {
		if err := dec.ReadFrame(row); err != nil {
			t.Fatalf("bin %d: %v", i, err)
		}
		for j, v := range row {
			if v != y.At(i, j) {
				t.Fatalf("bin %d link %d: got %v want %v", i, j, v, y.At(i, j))
			}
		}
	}
	if err := dec.ReadFrame(row); err != io.EOF {
		t.Fatalf("after last bin: got %v, want io.EOF", err)
	}

	// Mixed consumption: three bins via ReadFrame, the rest via
	// ReadBatch — the pending buffer must hand over cleanly.
	dec2, err := NewBinaryDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := dec2.ReadFrame(row); err != nil {
			t.Fatal(err)
		}
	}
	pool := NewFrameBatchPool(cap, links)
	seen := 3
	for {
		fb := pool.Get()
		rows, err := dec2.ReadBatch(fb)
		for r := 0; r < rows; r++ {
			for j := 0; j < links; j++ {
				if got := fb.Rows(rows).At(r, j); got != y.At(seen+r, j) {
					t.Fatalf("mixed read: bin %d link %d got %v want %v", seen+r, j, got, y.At(seen+r, j))
				}
			}
		}
		seen += rows
		fb.Release()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if seen != bins {
		t.Fatalf("mixed read consumed %d bins, want %d", seen, bins)
	}
}

// TestBinaryV2DecodeAllocFree is the v2 image of the zero-copy
// contract: once the decoder and the pooled batch exist, decoding a
// whole batch frame — either codec — allocates nothing.
func TestBinaryV2DecodeAllocFree(t *testing.T) {
	const bins, links, cap = 256, 120, 64
	y := wholeByteMatrix(bins, links, 13)
	for _, codec := range []Codec{CodecRaw, CodecXOR} {
		t.Run(codec.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteMatrixBinaryFormat(&buf, y, WireFormat{Version: 2, Codec: codec, BatchBins: cap}); err != nil {
				t.Fatal(err)
			}
			payload := buf.Bytes()
			pool := NewFrameBatchPool(cap, links)
			fb := pool.Get()
			defer fb.Release()
			rd := bytes.NewReader(payload)
			dec, err := NewBinaryDecoder(rd)
			if err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(100, func() {
				rows, err := dec.ReadBatch(fb)
				if err == io.EOF {
					rd.Reset(payload[binaryHeaderSize:]) // rewind past the header
					dec.r.Reset(rd)
					return
				}
				if err != nil || rows != cap {
					t.Fatalf("rows=%d err=%v", rows, err)
				}
			})
			if allocs != 0 {
				t.Fatalf("v2 %s ReadBatch allocates %v per batch, want 0", codec, allocs)
			}
		})
	}
}
