package netmeas

import (
	"context"
	"time"

	"netanomaly/internal/mat"
)

// LinkMeasurement is one bin of link byte counts delivered by a streaming
// collector.
type LinkMeasurement struct {
	Bin   int
	Loads []float64
}

// Stream replays the rows of a link-load matrix on a channel, one
// measurement per interval (immediately when interval is zero), closing
// the channel after the last bin or when ctx is cancelled. It models the
// periodic arrival of SNMP poll results feeding an online detector
// (Section 7.1).
func Stream(ctx context.Context, y *mat.Dense, interval time.Duration) <-chan LinkMeasurement {
	out := make(chan LinkMeasurement)
	go func() {
		defer close(out)
		var tick *time.Ticker
		if interval > 0 {
			tick = time.NewTicker(interval)
			defer tick.Stop()
		}
		bins, _ := y.Dims()
		for b := 0; b < bins; b++ {
			if tick != nil {
				select {
				case <-tick.C:
				case <-ctx.Done():
					return
				}
			}
			m := LinkMeasurement{Bin: b, Loads: y.Row(b)}
			select {
			case out <- m:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
