package netmeas

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
)

// DefaultMetricNames are the three per-link series of Section 7.2: byte
// counts, active IP-flow counts, and mean packet size.
var DefaultMetricNames = []string{"bytes", "flows", "pktsize"}

// MultiMetricConfig configures NewMultiMetricDetector.
type MultiMetricConfig struct {
	// Metrics names the stacked measurement blocks, in column order;
	// its length fixes how many links-wide blocks each batch must carry.
	// Default: DefaultMetricNames (bytes, flows, pktsize).
	Metrics []string
	// Quorum is how many metrics must flag a bin for the detector to
	// alarm. The default 1 alarms on any metric — the paper's point is
	// that scans and small-flow DDoS move flow counts without moving
	// bytes, so demanding bytes-agreement would hide exactly those.
	// Raise it to trade single-metric sensitivity for noise robustness.
	Quorum int
	// Online configures each per-metric subspace detector (window,
	// refit cadence, diagnosis options).
	Online core.OnlineConfig
}

// MultiMetricDetector fans one subspace detector per traffic metric over
// shared routing (Section 7.2: "the subspace method applies to any link
// metric for which the L2 norm is meaningful") and votes their per-bin
// verdicts into a single alarm stream. Measurement batches carry the
// metric blocks stacked column-wise — bins x (len(Metrics)*links), the
// layout StackMatrices and LinkMetricSet.Stacked produce.
//
// The winning alarm's diagnosis comes from the lowest-index metric that
// flagged the bin, so with the conventional ordering a byte-visible
// anomaly reports bytes while a scan that only moves flow counts
// reports the flow-count residual (Bytes is then in that metric's
// units). Each sub-detector inherits OnlineDetector's concurrency
// story: lock-free detection, background refits, atomic model swaps.
type MultiMetricDetector struct {
	names    []string
	linksPer int
	quorum   int
	dets     []*core.OnlineDetector
	// scratch backs the per-metric block handed to each sub-detector,
	// reused across batches (grown on demand) so the streaming hot path
	// does not allocate a fresh bins x links matrix per metric per
	// batch. Safe because the ViewDetector contract serializes
	// ProcessBatch/Seed callers and each sub-detector consumes its
	// block fully (copying what it keeps) before the next is built.
	scratch []float64
}

var _ core.ViewDetector = (*MultiMetricDetector)(nil)

// NewMultiMetricDetector seeds one subspace model per metric from the
// stacked history (bins x len(Metrics)*links). routing (links x flows)
// is shared by every metric's identifier.
func NewMultiMetricDetector(history, routing *mat.Dense, cfg MultiMetricConfig) (*MultiMetricDetector, error) {
	names := cfg.Metrics
	if len(names) == 0 {
		names = DefaultMetricNames
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = 1
	}
	if cfg.Quorum > len(names) {
		return nil, fmt.Errorf("netmeas: quorum %d exceeds %d metrics", cfg.Quorum, len(names))
	}
	links := routing.Rows()
	bins, cols := history.Dims()
	if cols != len(names)*links {
		return nil, fmt.Errorf("netmeas: stacked history has %d columns, want %d metrics x %d links", cols, len(names), links)
	}
	onlineCfg := cfg.Online
	if onlineCfg.Window <= 0 {
		onlineCfg.Window = bins
	}
	d := &MultiMetricDetector{
		names:    append([]string(nil), names...),
		linksPer: links,
		quorum:   cfg.Quorum,
		dets:     make([]*core.OnlineDetector, len(names)),
	}
	for j := range names {
		sub, err := core.NewOnlineDetector(d.metricBlock(history, bins, j), routing, onlineCfg)
		if err != nil {
			return nil, fmt.Errorf("netmeas: metric %q: %w", names[j], err)
		}
		d.dets[j] = sub
	}
	return d, nil
}

// metricBlock copies metric j's column block out of a stacked matrix
// into the reusable scratch buffer; the returned matrix is only valid
// until the next metricBlock call.
func (d *MultiMetricDetector) metricBlock(y *mat.Dense, bins, j int) *mat.Dense {
	need := bins * d.linksPer
	if cap(d.scratch) < need {
		d.scratch = make([]float64, need)
	}
	out := mat.NewDense(bins, d.linksPer, d.scratch[:need])
	data := out.RawData()
	raw := y.RawData()
	stride := len(d.names) * d.linksPer
	for b := 0; b < bins; b++ {
		copy(data[b*d.linksPer:(b+1)*d.linksPer], raw[b*stride+j*d.linksPer:b*stride+(j+1)*d.linksPer])
	}
	return out
}

// Metrics returns the configured metric names in column order.
func (d *MultiMetricDetector) Metrics() []string { return append([]string(nil), d.names...) }

// MetricDetector returns metric j's underlying subspace detector.
func (d *MultiMetricDetector) MetricDetector(j int) *core.OnlineDetector { return d.dets[j] }

// ProcessBatch splits the stacked batch (bins x len(Metrics)*links) into
// its metric blocks, runs each through its subspace detector, and emits
// one alarm per bin that at least Quorum metrics flagged. Deferred
// refit errors from any metric are reported alongside the detections.
func (d *MultiMetricDetector) ProcessBatch(y *mat.Dense) ([]core.Alarm, error) {
	bins, cols := y.Dims()
	if cols != len(d.names)*d.linksPer {
		return nil, fmt.Errorf("netmeas: stacked batch has %d columns, want %d metrics x %d links", cols, len(d.names), d.linksPer)
	}
	votes := make(map[int]int)
	winner := make(map[int]core.Alarm)
	var errs []error
	for j, sub := range d.dets {
		alarms, err := sub.ProcessBatch(d.metricBlock(y, bins, j))
		if err != nil {
			errs = append(errs, fmt.Errorf("netmeas: metric %q: %w", d.names[j], err))
		}
		for _, a := range alarms {
			votes[a.Seq]++
			if _, ok := winner[a.Seq]; !ok {
				winner[a.Seq] = a // lowest metric index wins the diagnosis
			}
		}
	}
	var out []core.Alarm
	for seq, n := range votes {
		if n >= d.quorum {
			out = append(out, winner[seq])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, errors.Join(errs...)
}

// Seed re-seeds every metric's model from the stacked history block.
func (d *MultiMetricDetector) Seed(history *mat.Dense) error {
	bins, cols := history.Dims()
	if cols != len(d.names)*d.linksPer {
		return fmt.Errorf("netmeas: stacked seed has %d columns, want %d metrics x %d links", cols, len(d.names), d.linksPer)
	}
	var errs []error
	for j, sub := range d.dets {
		if err := sub.Seed(d.metricBlock(history, bins, j)); err != nil {
			errs = append(errs, fmt.Errorf("netmeas: metric %q: %w", d.names[j], err))
		}
	}
	return errors.Join(errs...)
}

// Refit synchronously rebuilds every metric's model from its window.
func (d *MultiMetricDetector) Refit() error {
	var errs []error
	for j, sub := range d.dets {
		if err := sub.Refit(); err != nil {
			errs = append(errs, fmt.Errorf("netmeas: metric %q: %w", d.names[j], err))
		}
	}
	return errors.Join(errs...)
}

// WaitRefits blocks until no metric has a model fit in flight.
func (d *MultiMetricDetector) WaitRefits() {
	for _, sub := range d.dets {
		sub.WaitRefits()
	}
}

// TakeRefitError returns and clears the deferred refit errors across
// all metrics, if any.
func (d *MultiMetricDetector) TakeRefitError() error {
	var errs []error
	for j, sub := range d.dets {
		if err := sub.TakeRefitError(); err != nil {
			errs = append(errs, fmt.Errorf("netmeas: metric %q: %w", d.names[j], err))
		}
	}
	return errors.Join(errs...)
}

// Snapshot serializes every metric's subspace detector state as nested
// envelopes inside one multiflow envelope. Each sub-detector quiesces
// its own refits, so the composite never serializes a half-swapped
// model.
func (d *MultiMetricDetector) Snapshot(w io.Writer) error {
	return core.EncodeSnapshot(w, core.SnapKindMultiflow, func(sw *core.SnapshotWriter) {
		sw.Int(len(d.names))
		sw.Int(d.linksPer)
		for _, sub := range d.dets {
			sw.Nested(sub.Snapshot)
		}
	})
}

// Restore replaces every metric's detector state from a Snapshot taken
// on an equivalently configured detector (same metric count and links
// per metric). Restoration is per-metric in order; a failure part-way
// leaves earlier metrics restored, so callers should discard the
// detector on error.
func (d *MultiMetricDetector) Restore(r io.Reader) error {
	return core.DecodeSnapshot(r, core.SnapKindMultiflow, func(sr *core.SnapshotReader) error {
		if n := sr.Int(); sr.Err() == nil && n != len(d.names) {
			return core.SnapshotMismatchf("snapshot has %d metrics, detector expects %d", n, len(d.names))
		}
		if lp := sr.Int(); sr.Err() == nil && lp != d.linksPer {
			return core.SnapshotMismatchf("snapshot has %d links per metric, detector expects %d", lp, d.linksPer)
		}
		if err := sr.Err(); err != nil {
			return err
		}
		for j, sub := range d.dets {
			sr.Nested(sub.Restore)
			if err := sr.Err(); err != nil {
				return fmt.Errorf("netmeas: metric %q: %w", d.names[j], err)
			}
		}
		return nil
	})
}

// Stats reports the detector's state. Links is the stacked width;
// Rank and Refits are the first (conventionally bytes) metric's.
func (d *MultiMetricDetector) Stats() core.ViewStats {
	first := d.dets[0].Stats()
	return core.ViewStats{
		Backend:   "multiflow",
		Links:     len(d.names) * d.linksPer,
		Processed: first.Processed,
		Rank:      first.Rank,
		Refits:    first.Refits,
	}
}

// StackMatrices column-stacks matrices with identical row counts into
// one bins x (sum of columns) matrix — the layout MultiMetricDetector
// consumes.
func StackMatrices(ms ...*mat.Dense) (*mat.Dense, error) {
	if len(ms) == 0 {
		return nil, errors.New("netmeas: nothing to stack")
	}
	bins := ms[0].Rows()
	total := 0
	for _, m := range ms {
		if m.Rows() != bins {
			return nil, fmt.Errorf("netmeas: stacking %d-row matrix with %d-row matrix", m.Rows(), bins)
		}
		total += m.Cols()
	}
	out := mat.Zeros(bins, total)
	data := out.RawData()
	off := 0
	for _, m := range ms {
		raw := m.RawData()
		cols := m.Cols()
		for b := 0; b < bins; b++ {
			copy(data[b*total+off:b*total+off+cols], raw[b*cols:(b+1)*cols])
		}
		off += cols
	}
	return out, nil
}

// Stacked returns the metric set's three series column-stacked in the
// conventional order (bytes, flows, pktsize).
func (s *LinkMetricSet) Stacked() (*mat.Dense, error) {
	return StackMatrices(s.Bytes, s.FlowCounts, s.MeanPacketSize)
}
