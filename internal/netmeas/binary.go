package netmeas

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"netanomaly/internal/mat"
)

// Binary wire format for link-load streams. The format replaces CSV on
// the hot ingest path: a frame decodes with two reads and no parsing,
// field widths are fixed, and the decoder can deserialize straight into
// reused buffers — zero heap allocation per bin at steady state.
//
// Layout (all integers little-endian):
//
//	header  (12 bytes)  "NAMB" | version (1 byte) | 3 reserved zero bytes | uint32 link count
//	frame   (4+8m bytes) uint32 payload length (must equal 8*links) | links float64 loads
//
// One frame per time bin, frames in stream order, no trailer: a clean
// EOF at a frame boundary ends the stream. Non-finite loads are rejected
// on both sides of the wire.

const (
	binaryMagic = "NAMB"
	// BinaryVersion is the wire-format version this package reads and
	// writes.
	BinaryVersion = 1
	// MaxBinaryLinks caps the header's link count. The decoder sizes its
	// frame buffer from the header, so the cap bounds what a corrupt or
	// hostile stream can make it allocate.
	MaxBinaryLinks = 1 << 20

	binaryHeaderSize = 12
)

// ErrBinaryFormat is wrapped by every structural decode error (bad
// magic, unsupported version, oversized link count, mismatched frame
// length, non-finite load). Truncation errors wrap io.ErrUnexpectedEOF
// instead, so a reader can distinguish "garbage" from "cut short".
var ErrBinaryFormat = errors.New("malformed binary measurement stream")

// BinaryEncoder writes the binary wire format. The stream header is
// emitted by NewBinaryEncoder; WriteFrame then appends one frame per
// bin, reusing an internal buffer so encoding does not allocate.
type BinaryEncoder struct {
	w     io.Writer
	links int
	buf   []byte
}

// NewBinaryEncoder writes the stream header for links-wide frames to w
// and returns an encoder for the frames that follow.
func NewBinaryEncoder(w io.Writer, links int) (*BinaryEncoder, error) {
	if links <= 0 || links > MaxBinaryLinks {
		return nil, fmt.Errorf("netmeas: binary encoder: link count %d out of range [1, %d]", links, MaxBinaryLinks)
	}
	var hdr [binaryHeaderSize]byte
	copy(hdr[:4], binaryMagic)
	hdr[4] = BinaryVersion
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(links))
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("netmeas: binary encoder: writing header: %w", err)
	}
	return &BinaryEncoder{w: w, links: links, buf: make([]byte, 4+8*links)}, nil
}

// Links returns the per-frame link count fixed at construction.
func (e *BinaryEncoder) Links() int { return e.links }

// WriteFrame appends one bin of link loads as a frame.
func (e *BinaryEncoder) WriteFrame(loads []float64) error {
	if len(loads) != e.links {
		return fmt.Errorf("netmeas: binary encoder: frame has %d links, want %d", len(loads), e.links)
	}
	binary.LittleEndian.PutUint32(e.buf[:4], uint32(8*e.links))
	for j, v := range loads {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("netmeas: binary encoder: non-finite load %v at link %d: %w", v, j, ErrBinaryFormat)
		}
		binary.LittleEndian.PutUint64(e.buf[4+8*j:], math.Float64bits(v))
	}
	if _, err := e.w.Write(e.buf); err != nil {
		return fmt.Errorf("netmeas: binary encoder: writing frame: %w", err)
	}
	return nil
}

// WriteMatrixBinary encodes a bins x links matrix as one binary stream,
// one frame per row.
func WriteMatrixBinary(w io.Writer, y *mat.Dense) error {
	enc, err := NewBinaryEncoder(w, y.Cols())
	if err != nil {
		return err
	}
	for i := 0; i < y.Rows(); i++ {
		if err := enc.WriteFrame(y.RowView(i)); err != nil {
			return err
		}
	}
	return nil
}

// BinaryDecoder reads the binary wire format. The header is validated by
// NewBinaryDecoder; ReadFrame and ReadBatch then decode frames into
// caller-owned buffers without allocating.
type BinaryDecoder struct {
	r     *bufio.Reader
	links int
	raw   []byte // 4-byte length prefix + 8*links payload, reused per frame
}

// NewBinaryDecoder validates the stream header on r and returns a
// decoder for the frames that follow. The link count is bounds-checked
// before any length-proportional allocation happens.
func NewBinaryDecoder(r io.Reader) (*BinaryDecoder, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var hdr [binaryHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("netmeas: binary stream: truncated header: %w", io.ErrUnexpectedEOF)
	}
	if string(hdr[:4]) != binaryMagic {
		return nil, fmt.Errorf("netmeas: binary stream: bad magic %q: %w", hdr[:4], ErrBinaryFormat)
	}
	if hdr[4] != BinaryVersion {
		return nil, fmt.Errorf("netmeas: binary stream: unsupported version %d (want %d): %w", hdr[4], BinaryVersion, ErrBinaryFormat)
	}
	if hdr[5] != 0 || hdr[6] != 0 || hdr[7] != 0 {
		return nil, fmt.Errorf("netmeas: binary stream: nonzero reserved bytes: %w", ErrBinaryFormat)
	}
	links := binary.LittleEndian.Uint32(hdr[8:12])
	if links == 0 || links > MaxBinaryLinks {
		return nil, fmt.Errorf("netmeas: binary stream: link count %d out of range [1, %d]: %w", links, MaxBinaryLinks, ErrBinaryFormat)
	}
	return &BinaryDecoder{r: br, links: int(links), raw: make([]byte, 4+8*int(links))}, nil
}

// Links returns the per-frame link count declared by the stream header.
func (d *BinaryDecoder) Links() int { return d.links }

// ReadFrame decodes the next frame into dst (len must equal Links). It
// returns io.EOF at a clean end of stream, an io.ErrUnexpectedEOF-
// wrapping error on truncation mid-frame, and an ErrBinaryFormat-
// wrapping error on structural corruption. It does not allocate.
func (d *BinaryDecoder) ReadFrame(dst []float64) error {
	if len(dst) != d.links {
		return fmt.Errorf("netmeas: binary stream: frame buffer has %d links, want %d", len(dst), d.links)
	}
	if _, err := io.ReadFull(d.r, d.raw[:4]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("netmeas: binary stream: truncated frame length: %w", io.ErrUnexpectedEOF)
	}
	if n := binary.LittleEndian.Uint32(d.raw[:4]); int64(n) != int64(8*d.links) {
		return fmt.Errorf("netmeas: binary stream: frame length %d, want %d: %w", n, 8*d.links, ErrBinaryFormat)
	}
	payload := d.raw[4:]
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return fmt.Errorf("netmeas: binary stream: truncated frame payload: %w", io.ErrUnexpectedEOF)
	}
	for j := range dst {
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[8*j:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("netmeas: binary stream: non-finite load %v at link %d: %w", v, j, ErrBinaryFormat)
		}
		dst[j] = v
	}
	return nil
}

// ReadBatch fills fb with up to fb.Cap() frames and reports how many it
// decoded. err is nil when the batch filled, io.EOF when the stream
// ended cleanly (possibly with rows > 0 decoded first), and a decode
// error otherwise; rows counts only fully decoded frames in every case.
func (d *BinaryDecoder) ReadBatch(fb *FrameBatch) (rows int, err error) {
	for rows < fb.Cap() {
		if err := d.ReadFrame(fb.full.RowView(rows)); err != nil {
			return rows, err
		}
		rows++
	}
	return rows, nil
}

// ReadMatrixBinary decodes an entire binary stream into a bins x links
// matrix. The stream must hold at least one frame.
func ReadMatrixBinary(r io.Reader) (*mat.Dense, error) {
	dec, err := NewBinaryDecoder(r)
	if err != nil {
		return nil, err
	}
	row := make([]float64, dec.links)
	var data []float64
	rows := 0
	for {
		err := dec.ReadFrame(row)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		data = append(data, row...)
		rows++
	}
	if rows == 0 {
		return nil, fmt.Errorf("netmeas: binary stream: no frames: %w", ErrBinaryFormat)
	}
	return mat.NewDense(rows, dec.links, data), nil
}

// FrameBatchPool recycles fixed-shape FrameBatch buffers between a
// binary decoder (which fills them) and the engine shard that consumes
// them (which Releases them). Get and Release counts are exposed so
// lifecycle tests can assert every buffer handed out came back exactly
// once.
type FrameBatchPool struct {
	bins, links int
	pool        sync.Pool
	gets, puts  atomic.Int64
}

// NewFrameBatchPool returns a pool of bins x links batch buffers.
func NewFrameBatchPool(bins, links int) *FrameBatchPool {
	if bins <= 0 || links <= 0 {
		panic(fmt.Sprintf("netmeas: invalid FrameBatchPool shape %dx%d", bins, links))
	}
	p := &FrameBatchPool{bins: bins, links: links}
	p.pool.New = func() any {
		return &FrameBatch{full: mat.Zeros(bins, links), pool: p}
	}
	return p
}

// Get returns a batch buffer, recycled when one is available. The
// caller owns it until Release.
func (p *FrameBatchPool) Get() *FrameBatch {
	fb := p.pool.Get().(*FrameBatch)
	fb.released.Store(false)
	p.gets.Add(1)
	return fb
}

// Counters reports lifetime Get and Release counts. After a stream has
// fully quiesced (every consumer done), gets == puts means no buffer
// leaked and none was double-returned (Release panics on the latter).
func (p *FrameBatchPool) Counters() (gets, puts int64) {
	return p.gets.Load(), p.puts.Load()
}

// FrameBatch is one pooled bins x links buffer. Exactly one Release per
// Get: releasing twice panics, and a batch must not be touched after
// Release (the pool will hand it to another Get).
type FrameBatch struct {
	full     *mat.Dense
	pool     *FrameBatchPool
	released atomic.Bool
}

// Cap returns the batch's row capacity.
func (fb *FrameBatch) Cap() int { return fb.pool.bins }

// Links returns the batch's column count.
func (fb *FrameBatch) Links() int { return fb.pool.links }

// Rows returns the first rows rows as a matrix aliasing the pooled
// buffer. A full batch returns the preallocated matrix itself (no
// allocation); a partial batch allocates only a small header.
func (fb *FrameBatch) Rows(rows int) *mat.Dense {
	if rows == fb.pool.bins {
		return fb.full
	}
	return mat.NewDense(rows, fb.pool.links, fb.full.RawData()[:rows*fb.pool.links])
}

// Release returns the buffer to its pool. Calling it twice panics —
// a second owner may already be filling the buffer.
func (fb *FrameBatch) Release() {
	if fb.released.Swap(true) {
		panic("netmeas: FrameBatch released twice")
	}
	fb.pool.puts.Add(1)
	fb.pool.pool.Put(fb)
}

// StreamBinary decodes a binary measurement stream and replays it as
// LinkMeasurements, the source Monitor.IngestStream expects. Decoding
// is double-buffered: the producer alternates between two row buffers,
// which is safe because a channel consumer that finishes with one
// measurement before receiving the next (as IngestStream does — it
// copies the loads into its batch buffer) can never observe a buffer
// being rewritten. The channel closes at end of stream, on a decode
// error, or when ctx is cancelled; call the returned error function
// after the channel closes to learn whether the stream ended cleanly.
func StreamBinary(ctx context.Context, r io.Reader) (<-chan LinkMeasurement, func() error, error) {
	dec, err := NewBinaryDecoder(r)
	if err != nil {
		return nil, nil, err
	}
	out := make(chan LinkMeasurement)
	bufs := [2][]float64{make([]float64, dec.links), make([]float64, dec.links)}
	var streamErr error // written before close(out); read only after the channel closes
	go func() {
		defer close(out)
		for bin := 0; ; bin++ {
			dst := bufs[bin&1]
			err := dec.ReadFrame(dst)
			if err == io.EOF {
				return
			}
			if err != nil {
				streamErr = err
				return
			}
			select {
			case out <- LinkMeasurement{Bin: bin, Loads: dst}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, func() error { return streamErr }, nil
}
