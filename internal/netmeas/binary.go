package netmeas

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"unsafe"

	"netanomaly/internal/mat"
)

// hostLittleEndian reports whether float64 values lie in memory in the
// wire's byte order, which lets the raw codec read a batch payload
// straight into the destination floats and skip both the staging copy
// and the per-value byte shuffle. Every platform Go targets that this
// project runs on is little-endian; the probe keeps the big-endian
// fallback honest rather than silently corrupt.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Binary wire format for link-load streams. The format replaces CSV on
// the hot ingest path: frames decode with a fixed number of reads and no
// parsing, field widths are fixed, and the decoder can deserialize
// straight into reused buffers — zero heap allocation per bin at steady
// state.
//
// Version 1 layout (all integers little-endian):
//
//	header  (12 bytes)  "NAMB" | version=1 | 3 reserved zero bytes | uint32 link count
//	frame   (4+8m bytes) uint32 payload length (must equal 8*links) | links float64 loads
//
// One frame per time bin, two reads per bin. Version 2 amortizes the
// framing over a whole batch of bins and adds codec negotiation in the
// formerly reserved header bytes:
//
//	header  (12 bytes)  "NAMB" | version=2 | codec (1 byte) | uint16 batch capacity | uint32 link count
//	frame   (8+p bytes) uint32 bin count n | uint32 payload length p | payload
//
// so a stream costs two reads per batch instead of two per bin. Every
// frame except the last must carry exactly the header's batch capacity
// of bins (the decoder rejects a frame after a short one), which keeps
// the serialization canonical: a matrix has exactly one v2 encoding per
// (codec, capacity) choice. The codec byte selects the payload encoding:
// CodecRaw is bin-major LE float64 (8*n*links bytes, the batch image of
// the v1 payload); CodecXOR is the link-major XOR-compressed layout of
// codec.go. Frames in stream order, no trailer: a clean EOF at a frame
// boundary ends the stream. Non-finite loads are rejected on both sides
// of the wire under every version and codec.
const (
	binaryMagic = "NAMB"
	// BinaryVersion is the wire-format version written by default
	// (NewBinaryEncoder, WriteMatrixBinary) and the lowest version the
	// decoder accepts.
	BinaryVersion = 1
	// BinaryVersion2 is the batch-framed wire format with codec
	// negotiation. Written by NewBinaryEncoderFormat; the decoder sniffs
	// the version byte and accepts both.
	BinaryVersion2 = 2
	// MaxBinaryLinks caps the header's link count. The decoder sizes its
	// frame buffer from the header, so the cap bounds what a corrupt or
	// hostile stream can make it allocate.
	MaxBinaryLinks = 1 << 20
	// MaxBatchBins caps a v2 header's batch capacity.
	MaxBatchBins = 4096
	// DefaultBatchBins is the v2 batch capacity used when WireFormat
	// leaves it zero. It matches the engine's default BatchSize so one
	// decoded frame fills one pooled batch.
	DefaultBatchBins = 64

	binaryHeaderSize = 12
	// maxBatchFrameBytes bounds a v2 raw batch payload (8 * capacity *
	// links). Checked at header time, so a hostile header cannot combine
	// an in-range capacity with an in-range link count into a huge
	// buffer allocation.
	maxBatchFrameBytes = 1 << 25
)

// Codec identifies a v2 payload encoding, negotiated via the header's
// codec byte.
type Codec uint8

const (
	// CodecRaw stores each batch as bin-major LE float64 — fastest to
	// decode, 8 bytes per load on the wire.
	CodecRaw Codec = 0
	// CodecXOR stores each batch link-major with consecutive loads
	// XOR-delta compressed (see codec.go) — smooth traffic counts cost
	// a fraction of 8 bytes per load, at a modest decode premium.
	CodecXOR Codec = 1
)

// String returns the flag-friendly codec name.
func (c Codec) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecXOR:
		return "xor"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// ParseCodec maps a flag value to a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "raw":
		return CodecRaw, nil
	case "xor":
		return CodecXOR, nil
	}
	return 0, fmt.Errorf("netmeas: unknown codec %q (want raw or xor)", s)
}

// WireFormat selects the version, codec, and batch framing of an encoded
// stream. The zero value means version 1 (per-bin frames, raw payload).
type WireFormat struct {
	// Version is the wire-format version: BinaryVersion (default when 0)
	// or BinaryVersion2.
	Version int
	// Codec is the v2 payload encoding; must be CodecRaw under v1.
	Codec Codec
	// BatchBins is the v2 batch capacity in bins per frame, in
	// [1, MaxBatchBins]; 0 means DefaultBatchBins. Must be 0 under v1.
	BatchBins int
}

func (f WireFormat) normalize(links int) (WireFormat, error) {
	if f.Version == 0 {
		f.Version = BinaryVersion
	}
	switch f.Version {
	case BinaryVersion:
		if f.Codec != CodecRaw {
			return f, fmt.Errorf("netmeas: wire format v1 supports only the raw codec, got %v", f.Codec)
		}
		if f.BatchBins != 0 {
			return f, fmt.Errorf("netmeas: wire format v1 has no batch framing (BatchBins %d)", f.BatchBins)
		}
	case BinaryVersion2:
		if f.Codec != CodecRaw && f.Codec != CodecXOR {
			return f, fmt.Errorf("netmeas: unsupported codec %v", f.Codec)
		}
		if f.BatchBins == 0 {
			f.BatchBins = DefaultBatchBins
		}
		if f.BatchBins < 0 || f.BatchBins > MaxBatchBins {
			return f, fmt.Errorf("netmeas: batch capacity %d out of range [1, %d]", f.BatchBins, MaxBatchBins)
		}
		if 8*f.BatchBins*links > maxBatchFrameBytes {
			return f, fmt.Errorf("netmeas: batch frame %d bins x %d links exceeds %d bytes", f.BatchBins, links, maxBatchFrameBytes)
		}
	default:
		return f, fmt.Errorf("netmeas: unsupported wire format version %d", f.Version)
	}
	return f, nil
}

// ErrBinaryFormat is wrapped by every structural decode error (bad
// magic, unsupported version or codec, oversized link count or batch
// capacity, mismatched frame length, non-canonical XOR section,
// non-finite load). Truncation errors wrap io.ErrUnexpectedEOF instead,
// so a reader can distinguish "garbage" from "cut short".
var ErrBinaryFormat = errors.New("malformed binary measurement stream")

// BinaryEncoder writes the binary wire format. The stream header is
// emitted by NewBinaryEncoder / NewBinaryEncoderFormat; WriteFrame then
// appends one bin per call, reusing internal buffers so encoding does
// not allocate. A v1 encoder writes each bin through immediately; a v2
// encoder buffers BatchBins bins and emits one Write per batch frame —
// call Flush after the last bin to emit the final short frame.
type BinaryEncoder struct {
	w      io.Writer
	links  int
	format WireFormat
	buf    []byte // v1: one frame; v2: one batch frame (+8 slack for PutUint64 overshoot)

	// v2 batching state: pending bins accumulated bin-major.
	bins    []float64
	pending int
}

// NewBinaryEncoder writes a version-1 stream header for links-wide
// frames to w and returns an encoder for the frames that follow.
func NewBinaryEncoder(w io.Writer, links int) (*BinaryEncoder, error) {
	return NewBinaryEncoderFormat(w, links, WireFormat{})
}

// NewBinaryEncoderFormat writes the stream header for the requested
// wire format and returns an encoder for the frames that follow.
func NewBinaryEncoderFormat(w io.Writer, links int, format WireFormat) (*BinaryEncoder, error) {
	if links <= 0 || links > MaxBinaryLinks {
		return nil, fmt.Errorf("netmeas: binary encoder: link count %d out of range [1, %d]", links, MaxBinaryLinks)
	}
	format, err := format.normalize(links)
	if err != nil {
		return nil, fmt.Errorf("netmeas: binary encoder: %w", err)
	}
	var hdr [binaryHeaderSize]byte
	copy(hdr[:4], binaryMagic)
	hdr[4] = byte(format.Version)
	if format.Version == BinaryVersion2 {
		hdr[5] = byte(format.Codec)
		binary.LittleEndian.PutUint16(hdr[6:8], uint16(format.BatchBins))
	}
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(links))
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("netmeas: binary encoder: writing header: %w", err)
	}
	e := &BinaryEncoder{w: w, links: links, format: format}
	if format.Version == BinaryVersion {
		e.buf = make([]byte, 4+8*links)
	} else {
		e.bins = make([]float64, format.BatchBins*links)
		e.buf = make([]byte, 8+maxPayloadBytes(format.Codec, format.BatchBins, links)+8)
	}
	return e, nil
}

// maxPayloadBytes is the largest payload a batch frame of the codec can
// carry: raw is exactly 8 bytes per load; XOR is bounded by 8 bytes for
// each link's first load, a 2-byte section header, and at worst 8 bytes
// per subsequent load.
func maxPayloadBytes(codec Codec, bins, links int) int {
	if codec == CodecRaw {
		return 8 * bins * links
	}
	per := 8
	if bins > 1 {
		per += 2 + 8*(bins-1)
	}
	return per * links
}

// Links returns the per-frame link count fixed at construction.
func (e *BinaryEncoder) Links() int { return e.links }

// Format returns the negotiated wire format being written.
func (e *BinaryEncoder) Format() WireFormat { return e.format }

// WriteFrame appends one bin of link loads. Under v2 the bin is buffered
// until a full batch frame accumulates; call Flush after the last bin.
func (e *BinaryEncoder) WriteFrame(loads []float64) error {
	if len(loads) != e.links {
		return fmt.Errorf("netmeas: binary encoder: frame has %d links, want %d", len(loads), e.links)
	}
	if e.format.Version == BinaryVersion {
		binary.LittleEndian.PutUint32(e.buf[:4], uint32(8*e.links))
		for j, v := range loads {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("netmeas: binary encoder: non-finite load %v at link %d: %w", v, j, ErrBinaryFormat)
			}
			binary.LittleEndian.PutUint64(e.buf[4+8*j:], math.Float64bits(v))
		}
		if _, err := e.w.Write(e.buf); err != nil {
			return fmt.Errorf("netmeas: binary encoder: writing frame: %w", err)
		}
		return nil
	}
	row := e.bins[e.pending*e.links:]
	for j, v := range loads {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("netmeas: binary encoder: non-finite load %v at link %d: %w", v, j, ErrBinaryFormat)
		}
		row[j] = v
	}
	e.pending++
	if e.pending == e.format.BatchBins {
		return e.flushBatch()
	}
	return nil
}

// Flush emits any buffered bins as a final (possibly short) batch frame.
// It is a no-op under v1 and after everything has been flushed, so it is
// always safe to call once more.
func (e *BinaryEncoder) Flush() error {
	if e.format.Version == BinaryVersion || e.pending == 0 {
		return nil
	}
	return e.flushBatch()
}

func (e *BinaryEncoder) flushBatch() error {
	n := e.pending
	e.pending = 0
	var plen int
	if e.format.Codec == CodecRaw {
		plen = 8 * n * e.links
		payload := e.buf[8:]
		for i, v := range e.bins[:n*e.links] {
			binary.LittleEndian.PutUint64(payload[8*i:], math.Float64bits(v))
		}
	} else {
		plen = encodeXORFrame(e.buf[8:], e.bins[:n*e.links], n, e.links)
	}
	binary.LittleEndian.PutUint32(e.buf[0:4], uint32(n))
	binary.LittleEndian.PutUint32(e.buf[4:8], uint32(plen))
	if _, err := e.w.Write(e.buf[:8+plen]); err != nil {
		return fmt.Errorf("netmeas: binary encoder: writing batch frame: %w", err)
	}
	return nil
}

// WriteMatrixBinary encodes a bins x links matrix as one version-1
// binary stream, one frame per row.
func WriteMatrixBinary(w io.Writer, y *mat.Dense) error {
	return WriteMatrixBinaryFormat(w, y, WireFormat{})
}

// WriteMatrixBinaryFormat encodes a bins x links matrix as one binary
// stream in the requested wire format, flushing the final short batch
// frame under v2. Each accepted (version, codec, capacity) choice has
// exactly one canonical serialization of the matrix, and it is the one
// this function writes.
func WriteMatrixBinaryFormat(w io.Writer, y *mat.Dense, format WireFormat) error {
	enc, err := NewBinaryEncoderFormat(w, y.Cols(), format)
	if err != nil {
		return err
	}
	for i := 0; i < y.Rows(); i++ {
		if err := enc.WriteFrame(y.RowView(i)); err != nil {
			return err
		}
	}
	return enc.Flush()
}

// BinaryDecoder reads the binary wire format, sniffing the version from
// the header: v1 per-bin streams and v2 batch-framed streams (either
// codec) decode through the same API. The header is validated by
// NewBinaryDecoder; ReadFrame and ReadBatch then decode into
// caller-owned buffers without allocating (ReadFrame on a v2 stream
// lazily allocates one internal batch buffer on first use).
type BinaryDecoder struct {
	r      *bufio.Reader
	links  int
	format WireFormat
	raw    []byte // v1: one frame; v2: one batch payload (+8 slack for Uint64 overshoot)
	reads  int64  // io.ReadFull calls issued — the stream's syscall proxy

	// v2 state.
	short bool // a short batch frame was seen; the stream must end
	// pend buffers a decoded batch for per-bin ReadFrame consumption.
	pend               []float64
	pendRows, pendNext int
}

// NewBinaryDecoder validates the stream header on r and returns a
// decoder for the frames that follow. The link count and batch capacity
// are bounds-checked before any length-proportional allocation happens.
func NewBinaryDecoder(r io.Reader) (*BinaryDecoder, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	d := &BinaryDecoder{r: br}
	var hdr [binaryHeaderSize]byte
	d.reads++
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("netmeas: binary stream: truncated header: %w", io.ErrUnexpectedEOF)
	}
	if string(hdr[:4]) != binaryMagic {
		return nil, fmt.Errorf("netmeas: binary stream: bad magic %q: %w", hdr[:4], ErrBinaryFormat)
	}
	links := binary.LittleEndian.Uint32(hdr[8:12])
	if links == 0 || links > MaxBinaryLinks {
		return nil, fmt.Errorf("netmeas: binary stream: link count %d out of range [1, %d]: %w", links, MaxBinaryLinks, ErrBinaryFormat)
	}
	d.links = int(links)
	switch hdr[4] {
	case BinaryVersion:
		if hdr[5] != 0 || hdr[6] != 0 || hdr[7] != 0 {
			return nil, fmt.Errorf("netmeas: binary stream: nonzero reserved bytes: %w", ErrBinaryFormat)
		}
		d.format = WireFormat{Version: BinaryVersion, Codec: CodecRaw}
		d.raw = make([]byte, 4+8*d.links)
	case BinaryVersion2:
		if hdr[5] > uint8(CodecXOR) {
			return nil, fmt.Errorf("netmeas: binary stream: unsupported codec %d: %w", hdr[5], ErrBinaryFormat)
		}
		cap16 := binary.LittleEndian.Uint16(hdr[6:8])
		if cap16 == 0 || int(cap16) > MaxBatchBins {
			return nil, fmt.Errorf("netmeas: binary stream: batch capacity %d out of range [1, %d]: %w", cap16, MaxBatchBins, ErrBinaryFormat)
		}
		if 8*int(cap16)*d.links > maxBatchFrameBytes {
			return nil, fmt.Errorf("netmeas: binary stream: batch frame %d bins x %d links exceeds %d bytes: %w", cap16, d.links, maxBatchFrameBytes, ErrBinaryFormat)
		}
		d.format = WireFormat{Version: BinaryVersion2, Codec: Codec(hdr[5]), BatchBins: int(cap16)}
		d.raw = make([]byte, maxPayloadBytes(d.format.Codec, d.format.BatchBins, d.links)+8)
	default:
		return nil, fmt.Errorf("netmeas: binary stream: unsupported version %d (want %d or %d): %w", hdr[4], BinaryVersion, BinaryVersion2, ErrBinaryFormat)
	}
	return d, nil
}

// Links returns the per-frame link count declared by the stream header.
func (d *BinaryDecoder) Links() int { return d.links }

// Version returns the sniffed wire-format version (1 or 2).
func (d *BinaryDecoder) Version() int { return d.format.Version }

// Codec returns the negotiated payload codec (CodecRaw for v1 streams).
func (d *BinaryDecoder) Codec() Codec { return d.format.Codec }

// BatchBins returns the v2 batch capacity declared by the header, or 0
// for a v1 stream.
func (d *BinaryDecoder) BatchBins() int { return d.format.BatchBins }

// Format returns the full sniffed wire format; re-encoding an accepted
// stream with WriteMatrixBinaryFormat under this format reproduces it
// byte for byte.
func (d *BinaryDecoder) Format() WireFormat { return d.format }

// ReadCalls reports how many io.ReadFull calls the decoder has issued —
// a proxy for syscalls on an unbuffered source. A v1 stream costs two
// per bin; a v2 stream two per batch frame.
func (d *BinaryDecoder) ReadCalls() int64 { return d.reads }

// ReadFrame decodes the next bin into dst (len must equal Links). It
// returns io.EOF at a clean end of stream, an io.ErrUnexpectedEOF-
// wrapping error on truncation mid-frame, and an ErrBinaryFormat-
// wrapping error on structural corruption. On a v1 stream it does not
// allocate; on a v2 stream it decodes a whole batch frame into an
// internal buffer (allocated once, on first use) and serves bins from
// it.
func (d *BinaryDecoder) ReadFrame(dst []float64) error {
	if len(dst) != d.links {
		return fmt.Errorf("netmeas: binary stream: frame buffer has %d links, want %d", len(dst), d.links)
	}
	if d.format.Version == BinaryVersion2 {
		if d.pendNext >= d.pendRows {
			if d.pend == nil {
				d.pend = make([]float64, d.format.BatchBins*d.links)
			}
			n, err := d.readBatchFrame(d.pend)
			if err != nil {
				return err
			}
			d.pendRows, d.pendNext = n, 0
		}
		copy(dst, d.pend[d.pendNext*d.links:(d.pendNext+1)*d.links])
		d.pendNext++
		return nil
	}
	d.reads++
	if _, err := io.ReadFull(d.r, d.raw[:4]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("netmeas: binary stream: truncated frame length: %w", io.ErrUnexpectedEOF)
	}
	if n := binary.LittleEndian.Uint32(d.raw[:4]); int64(n) != int64(8*d.links) {
		return fmt.Errorf("netmeas: binary stream: frame length %d, want %d: %w", n, 8*d.links, ErrBinaryFormat)
	}
	payload := d.raw[4:]
	d.reads++
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return fmt.Errorf("netmeas: binary stream: truncated frame payload: %w", io.ErrUnexpectedEOF)
	}
	for j := range dst {
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[8*j:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("netmeas: binary stream: non-finite load %v at link %d: %w", v, j, ErrBinaryFormat)
		}
		dst[j] = v
	}
	return nil
}

// readBatchFrame decodes the next v2 batch frame into dst, which must
// hold BatchBins*links values, and returns the frame's bin count. It
// returns io.EOF at a clean end of stream.
func (d *BinaryDecoder) readBatchFrame(dst []float64) (int, error) {
	// The 8-byte frame header parses before the payload overwrites it,
	// so it can borrow the front of the payload buffer — a local array
	// would escape through the io.ReadFull interface call and cost one
	// heap allocation per batch.
	hdr := d.raw[:8]
	d.reads++
	if _, err := io.ReadFull(d.r, hdr); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("netmeas: binary stream: truncated batch frame header: %w", io.ErrUnexpectedEOF)
	}
	if d.short {
		// Canonical framing: only the last frame may be short, so any
		// frame after a short one is structural corruption.
		return 0, fmt.Errorf("netmeas: binary stream: batch frame after a short frame: %w", ErrBinaryFormat)
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	plen := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if n == 0 || n > d.format.BatchBins {
		return 0, fmt.Errorf("netmeas: binary stream: batch frame bin count %d out of range [1, %d]: %w", n, d.format.BatchBins, ErrBinaryFormat)
	}
	if d.format.Codec == CodecRaw {
		if plen != 8*n*d.links {
			return 0, fmt.Errorf("netmeas: binary stream: batch payload length %d, want %d: %w", plen, 8*n*d.links, ErrBinaryFormat)
		}
	} else if plen < 8*d.links || plen > maxPayloadBytes(CodecXOR, n, d.links) {
		return 0, fmt.Errorf("netmeas: binary stream: batch payload length %d out of range for %d bins x %d links: %w", plen, n, d.links, ErrBinaryFormat)
	}
	d.reads++
	if d.format.Codec == CodecRaw && hostLittleEndian {
		// Zero-copy raw decode: the wire is little-endian float64 bits
		// and so is the host, so the payload reads straight into the
		// destination batch buffer — no staging copy, no per-value byte
		// shuffle — and only a load-and-test scan runs over the result.
		cnt := n * d.links
		out := dst[:cnt]
		buf := unsafe.Slice((*byte)(unsafe.Pointer(&out[0])), plen)
		if _, err := io.ReadFull(d.r, buf); err != nil {
			return 0, fmt.Errorf("netmeas: binary stream: truncated batch payload: %w", io.ErrUnexpectedEOF)
		}
		const exp = 0x7ff0000000000000
		for i, v := range out {
			if math.Float64bits(v)&exp == exp { // NaN or Inf exponent
				return 0, fmt.Errorf("netmeas: binary stream: non-finite load at bin %d link %d: %w", i/d.links, i%d.links, ErrBinaryFormat)
			}
		}
	} else {
		if _, err := io.ReadFull(d.r, d.raw[:plen]); err != nil {
			return 0, fmt.Errorf("netmeas: binary stream: truncated batch payload: %w", io.ErrUnexpectedEOF)
		}
		if d.format.Codec == CodecRaw {
			// Big-endian fallback: decode each value through the
			// byte-order shim.
			cnt := n * d.links
			out := dst[:cnt]
			const exp = 0x7ff0000000000000
			for i := 0; i < cnt; i++ {
				bits := binary.LittleEndian.Uint64(d.raw[8*i:])
				if bits&exp == exp { // NaN or Inf exponent
					return 0, fmt.Errorf("netmeas: binary stream: non-finite load at bin %d link %d: %w", i/d.links, i%d.links, ErrBinaryFormat)
				}
				out[i] = math.Float64frombits(bits)
			}
		} else if err := decodeXORFrame(d.raw, plen, dst, n, d.links); err != nil {
			return 0, err
		}
	}
	if n < d.format.BatchBins {
		d.short = true
	}
	return n, nil
}

// ReadBatch fills fb with decoded bins and reports how many. On a v1
// stream it loops ReadFrame up to fb.Cap(); on a v2 stream it decodes
// one whole batch frame straight into the pooled buffer — no per-bin
// loop, no rebatch copy — so fb.Cap() must be at least BatchBins. err
// is nil when bins were decoded and the stream continues, io.EOF when
// the stream ended cleanly (possibly with rows > 0 decoded first), and
// a decode error otherwise; rows counts only fully decoded bins in
// every case.
func (d *BinaryDecoder) ReadBatch(fb *FrameBatch) (rows int, err error) {
	if fb.Links() != d.links {
		return 0, fmt.Errorf("netmeas: binary stream: batch buffer has %d links, want %d", fb.Links(), d.links)
	}
	if d.format.Version == BinaryVersion2 {
		// Serve bins already decoded by an interleaved ReadFrame first,
		// so mixed callers never lose or reorder bins.
		if d.pendNext < d.pendRows {
			n := d.pendRows - d.pendNext
			if n > fb.Cap() {
				n = fb.Cap()
			}
			copy(fb.full.RawData()[:n*d.links], d.pend[d.pendNext*d.links:(d.pendNext+n)*d.links])
			d.pendNext += n
			return n, nil
		}
		if fb.Cap() < d.format.BatchBins {
			return 0, fmt.Errorf("netmeas: binary stream: batch buffer holds %d bins, stream frames carry up to %d", fb.Cap(), d.format.BatchBins)
		}
		// A short frame is the stream's last, but the caller learns that
		// on its next call (io.EOF) rather than by peeking ahead here.
		return d.readBatchFrame(fb.full.RawData())
	}
	for rows < fb.Cap() {
		if err := d.ReadFrame(fb.full.RowView(rows)); err != nil {
			return rows, err
		}
		rows++
	}
	return rows, nil
}

// ReadMatrixBinary decodes an entire binary stream (either version) into
// a bins x links matrix. The stream must hold at least one frame.
func ReadMatrixBinary(r io.Reader) (*mat.Dense, error) {
	dec, err := NewBinaryDecoder(r)
	if err != nil {
		return nil, err
	}
	row := make([]float64, dec.links)
	var data []float64
	rows := 0
	for {
		err := dec.ReadFrame(row)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		data = append(data, row...)
		rows++
	}
	if rows == 0 {
		return nil, fmt.Errorf("netmeas: binary stream: no frames: %w", ErrBinaryFormat)
	}
	return mat.NewDense(rows, dec.links, data), nil
}

// FrameBatchPool recycles fixed-shape FrameBatch buffers between a
// binary decoder (which fills them) and the engine shard that consumes
// them (which Releases them). Get and Release counts are exposed so
// lifecycle tests can assert every buffer handed out came back exactly
// once.
type FrameBatchPool struct {
	bins, links int
	pool        sync.Pool
	gets, puts  atomic.Int64
}

// NewFrameBatchPool returns a pool of bins x links batch buffers.
func NewFrameBatchPool(bins, links int) *FrameBatchPool {
	if bins <= 0 || links <= 0 {
		panic(fmt.Sprintf("netmeas: invalid FrameBatchPool shape %dx%d", bins, links))
	}
	p := &FrameBatchPool{bins: bins, links: links}
	p.pool.New = func() any {
		return &FrameBatch{full: mat.Zeros(bins, links), pool: p}
	}
	return p
}

// Bins returns the pool's per-batch row capacity.
func (p *FrameBatchPool) Bins() int { return p.bins }

// Links returns the pool's per-batch column count.
func (p *FrameBatchPool) Links() int { return p.links }

// Get returns a batch buffer, recycled when one is available. The
// caller owns it until Release.
func (p *FrameBatchPool) Get() *FrameBatch {
	fb := p.pool.Get().(*FrameBatch)
	fb.released.Store(false)
	p.gets.Add(1)
	return fb
}

// Counters reports lifetime Get and Release counts. After a stream has
// fully quiesced (every consumer done), gets == puts means no buffer
// leaked and none was double-returned (Release panics on the latter).
func (p *FrameBatchPool) Counters() (gets, puts int64) {
	return p.gets.Load(), p.puts.Load()
}

// FrameBatch is one pooled bins x links buffer. Exactly one Release per
// Get: releasing twice panics, and a batch must not be touched after
// Release (the pool will hand it to another Get).
type FrameBatch struct {
	full     *mat.Dense
	pool     *FrameBatchPool
	released atomic.Bool
}

// Cap returns the batch's row capacity.
func (fb *FrameBatch) Cap() int { return fb.pool.bins }

// Links returns the batch's column count.
func (fb *FrameBatch) Links() int { return fb.pool.links }

// Rows returns the first rows rows as a matrix aliasing the pooled
// buffer. A full batch returns the preallocated matrix itself (no
// allocation); a partial batch allocates only a small header.
func (fb *FrameBatch) Rows(rows int) *mat.Dense {
	if rows == fb.pool.bins {
		return fb.full
	}
	return mat.NewDense(rows, fb.pool.links, fb.full.RawData()[:rows*fb.pool.links])
}

// Release returns the buffer to its pool. Calling it twice panics —
// a second owner may already be filling the buffer.
func (fb *FrameBatch) Release() {
	if fb.released.Swap(true) {
		panic("netmeas: FrameBatch released twice")
	}
	fb.pool.puts.Add(1)
	fb.pool.pool.Put(fb)
}

// StreamBinary decodes a binary measurement stream (either version) and
// replays it as LinkMeasurements, the source Monitor.IngestStream
// expects. Decoding is double-buffered: the producer alternates between
// two row buffers, which is safe because a channel consumer that
// finishes with one measurement before receiving the next (as
// IngestStream does — it copies the loads into its batch buffer) can
// never observe a buffer being rewritten. The channel closes at end of
// stream, on a decode error, or when ctx is cancelled; call the
// returned error function after the channel closes to learn whether the
// stream ended cleanly.
func StreamBinary(ctx context.Context, r io.Reader) (<-chan LinkMeasurement, func() error, error) {
	dec, err := NewBinaryDecoder(r)
	if err != nil {
		return nil, nil, err
	}
	out := make(chan LinkMeasurement)
	bufs := [2][]float64{make([]float64, dec.links), make([]float64, dec.links)}
	var streamErr error // written before close(out); read only after the channel closes
	go func() {
		defer close(out)
		for bin := 0; ; bin++ {
			dst := bufs[bin&1]
			err := dec.ReadFrame(dst)
			if err == io.EOF {
				return
			}
			if err != nil {
				streamErr = err
				return
			}
			select {
			case out <- LinkMeasurement{Bin: bin, Loads: dst}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, func() error { return streamErr }, nil
}
