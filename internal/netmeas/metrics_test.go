package netmeas

import (
	"testing"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
)

func metricsFixture(t *testing.T, seed int64) (*topology.Topology, *mat.Dense, *LinkMetricSet) {
	t.Helper()
	topo := topology.Abilene()
	cfg := traffic.DefaultConfig(seed)
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	od := gen.Generate()
	ms, err := LinkMetrics(topo, od, MetricConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return topo, od, ms
}

// TestLinkMetricsReproducible pins the derived-metric synthesis to the
// configured seed, bin for bin: trafficgen -metrics output (and the
// multiflow smoke numbers built on it) must not change between runs.
func TestLinkMetricsReproducible(t *testing.T) {
	_, _, ms1 := metricsFixture(t, 62)
	_, _, ms2 := metricsFixture(t, 62)
	s1, err := ms1.Stacked()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ms2.Stacked()
	if err != nil {
		t.Fatal(err)
	}
	a, b := s1.RawData(), s2.RawData()
	if len(a) != len(b) {
		t.Fatalf("shapes differ: %d vs %d values", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at value %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLinkMetricsShapes(t *testing.T) {
	topo, od, ms := metricsFixture(t, 61)
	bins, _ := od.Dims()
	for name, m := range map[string]*mat.Dense{
		"bytes": ms.Bytes, "counts": ms.FlowCounts, "mps": ms.MeanPacketSize,
	} {
		r, c := m.Dims()
		if r != bins || c != topo.NumLinks() {
			t.Fatalf("%s dims %dx%d", name, r, c)
		}
	}
}

func TestLinkMetricsBytesMatchLinkLoads(t *testing.T) {
	topo, od, ms := metricsFixture(t, 62)
	want := traffic.LinkLoads(topo, od)
	if !mat.EqualApprox(ms.Bytes, want, 1e-6*(1+want.MaxAbs())) {
		t.Fatal("metric bytes disagree with traffic.LinkLoads")
	}
}

func TestLinkMetricsCountsProportionalToBytes(t *testing.T) {
	_, _, ms := metricsFixture(t, 63)
	// Flow counts track bytes at ~40 flows per MB within noise.
	bins, links := ms.Bytes.Dims()
	for b := 0; b < bins; b += 97 {
		for l := 0; l < links; l += 7 {
			byteV := ms.Bytes.At(b, l)
			if byteV < 1e6 {
				continue
			}
			ratio := ms.FlowCounts.At(b, l) / (byteV / 1e6)
			if ratio < 30 || ratio > 50 {
				t.Fatalf("flows/MB = %v at (%d,%d)", ratio, b, l)
			}
		}
	}
}

func TestLinkMetricsValidation(t *testing.T) {
	topo := topology.Abilene()
	if _, err := LinkMetrics(topo, mat.Zeros(4, 3), MetricConfig{}); err == nil {
		t.Fatal("wrong flow count must error")
	}
}

func TestInjectFlowCountAnomalyPanics(t *testing.T) {
	topo, _, ms := metricsFixture(t, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ms.InjectFlowCountAnomaly(topo, 0, -1, 100)
}

// TestSubspaceMethodOnFlowCounts exercises the Section 7.2 claim: the
// subspace method applies unchanged to the flow-count metric, catching a
// scan-like anomaly that adds many flows but negligible bytes.
func TestSubspaceMethodOnFlowCounts(t *testing.T) {
	topo, _, ms := metricsFixture(t, 65)
	flow := topo.FlowID(2, 9)
	const bin = 700
	// The scan: +40k flows on the path, no byte change.
	ms.InjectFlowCountAnomaly(topo, flow, bin, 4e4)

	// Byte-based detection must NOT fire at that bin...
	byteDiag, err := core.NewDiagnoser(ms.Bytes, topo.RoutingMatrix(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, alarmed := byteDiag.DiagnoseAt(ms.Bytes.Row(bin)); alarmed {
		t.Fatal("byte metric alarmed on a pure flow-count anomaly")
	}

	// ...while flow-count-based detection identifies the culprit flow.
	countDiag, err := core.NewDiagnoser(ms.FlowCounts, topo.RoutingMatrix(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, alarmed := countDiag.DiagnoseAt(ms.FlowCounts.Row(bin))
	if !alarmed {
		t.Fatal("flow-count metric missed the scan anomaly")
	}
	if d.Flow != flow {
		t.Fatalf("identified flow %d want %d", d.Flow, flow)
	}
}
