// Package tomo implements traffic matrix estimation from link loads —
// the network tomography problem y = Ax the paper contrasts with its
// identification step (Section 8, citing Vardi and the tomogravity line
// of work). Estimating all OD intensities from link data is much harder
// than deciding which single flow changed; this package provides the
// classical gravity and tomogravity estimators both as a substrate (the
// paper's own datasets were built with the methodology of Zhang et al.)
// and as a baseline: anomaly sizing read off per-bin traffic matrix
// estimates is far less accurate than the subspace quantification, which
// the comparison experiment demonstrates.
package tomo

import (
	"fmt"
	"math"

	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
)

// GravityEstimate returns the gravity-model traffic matrix for one link
// load vector: each PoP's total origin (destination) traffic is read off
// its access links, and flow o->d gets share in(o)*out(d)/total. With
// intra-PoP links present, a PoP's originating traffic is approximated by
// the total traffic on links leaving it.
func GravityEstimate(topo *topology.Topology, y []float64) []float64 {
	if len(y) != topo.NumLinks() {
		panic(fmt.Sprintf("tomo: load vector has %d links, topology %d", len(y), topo.NumLinks()))
	}
	p := topo.NumPoPs()
	out := make([]float64, p) // traffic leaving PoP (origin proxy)
	in := make([]float64, p)  // traffic entering PoP (destination proxy)
	for _, l := range topo.Links() {
		v := y[l.ID]
		if l.Intra() {
			out[l.Src] += v
			in[l.Dst] += v
			continue
		}
		out[l.Src] += v
		in[l.Dst] += v
	}
	var total float64
	for _, v := range out {
		total += v
	}
	x := make([]float64, topo.NumFlows())
	if total == 0 {
		return x
	}
	for o := 0; o < p; o++ {
		for d := 0; d < p; d++ {
			x[topo.FlowID(o, d)] = out[o] * in[d] / total
		}
	}
	return x
}

// Tomogravity refines a gravity prior to satisfy the link constraints
// y = Ax in the least-squares sense: it minimizes ||x - g||^2 (weighted
// by the prior) subject to staying consistent with the observed loads,
// via the normal-equations correction
//
//	x = g + W A^T (A W A^T)^+ (y - A g)
//
// with W = diag(g) (larger flows absorb more correction), following the
// weighted least-squares form of Zhang et al. Negative entries are
// clipped to zero. The routing matrix a must match the topology that
// produced y.
type Tomogravity struct {
	topo *topology.Topology
	a    *mat.Dense
}

// NewTomogravity precomputes the routing matrix for the topology.
func NewTomogravity(topo *topology.Topology) *Tomogravity {
	return &Tomogravity{topo: topo, a: topo.RoutingMatrix()}
}

// Estimate returns the tomogravity traffic matrix for one link load
// vector.
func (t *Tomogravity) Estimate(y []float64) ([]float64, error) {
	links, flows := t.a.Dims()
	if len(y) != links {
		return nil, fmt.Errorf("tomo: load vector has %d links, routing %d", len(y), links)
	}
	g := GravityEstimate(t.topo, y)
	// Residual of the prior against the observations.
	resid := mat.SubVec(y, mat.MulVec(t.a, g))
	// M = A W A^T (links x links), W = diag(g) with a floor so zero-prior
	// flows can still absorb correction.
	floor := 0.0
	for _, v := range g {
		floor += v
	}
	floor = math.Max(floor*1e-6/float64(flows), 1e-9)
	m := mat.Zeros(links, links)
	for f := 0; f < flows; f++ {
		w := g[f]
		if w < floor {
			w = floor
		}
		route := t.topo.Route(f)
		for _, li := range route {
			for _, lj := range route {
				m.Set(li, lj, m.At(li, lj)+w)
			}
		}
	}
	// Solve M z = resid; ridge-regularize for rank deficiency.
	ridge := 1e-9 * (1 + m.MaxAbs())
	for i := 0; i < links; i++ {
		m.Set(i, i, m.At(i, i)+ridge)
	}
	z, err := mat.Solve(m, resid)
	if err != nil {
		return nil, fmt.Errorf("tomo: constraint solve: %w", err)
	}
	// x = g + W A^T z
	x := mat.CloneVec(g)
	atz := mat.MulTVec(t.a, z)
	for f := 0; f < flows; f++ {
		w := g[f]
		if w < floor {
			w = floor
		}
		x[f] += w * atz[f]
		if x[f] < 0 {
			x[f] = 0
		}
	}
	return x, nil
}

// EstimateMatrix runs Estimate on every row of a link-load matrix,
// returning the bins x flows estimated traffic matrix.
func (t *Tomogravity) EstimateMatrix(y *mat.Dense) (*mat.Dense, error) {
	bins, _ := y.Dims()
	out := mat.Zeros(bins, t.topo.NumFlows())
	for b := 0; b < bins; b++ {
		x, err := t.Estimate(y.RowView(b))
		if err != nil {
			return nil, fmt.Errorf("tomo: bin %d: %w", b, err)
		}
		out.SetRow(b, x)
	}
	return out, nil
}

// LinkError returns the relative residual ||A x - y|| / ||y|| of an
// estimate — tomogravity should satisfy the link constraints almost
// exactly.
func (t *Tomogravity) LinkError(x, y []float64) float64 {
	resid := mat.SubVec(mat.MulVec(t.a, x), y)
	n := mat.Norm2(y)
	if n == 0 {
		return 0
	}
	return mat.Norm2(resid) / n
}
