package tomo

import (
	"math"
	"testing"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
	"netanomaly/internal/stats"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
)

func fixture(t *testing.T, seed int64, bins int) (*topology.Topology, *mat.Dense, *mat.Dense) {
	t.Helper()
	topo := topology.Abilene()
	cfg := traffic.DefaultConfig(seed)
	cfg.Bins = bins
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := gen.Generate()
	return topo, x, traffic.LinkLoads(topo, x)
}

func TestGravityEstimateConservesTraffic(t *testing.T) {
	topo, x, y := fixture(t, 81, 24)
	for b := 0; b < 24; b += 7 {
		g := GravityEstimate(topo, y.Row(b))
		var gotTotal, trueTotal float64
		for f := 0; f < topo.NumFlows(); f++ {
			gotTotal += g[f]
			trueTotal += x.At(b, f)
		}
		// Gravity totals come from link sums, which overcount by path
		// length for origins; totals agree within a small factor only.
		if gotTotal <= 0 {
			t.Fatalf("bin %d: gravity total %v", b, gotTotal)
		}
		ratio := gotTotal / trueTotal
		if ratio < 0.5 || ratio > 5 {
			t.Fatalf("bin %d: gravity total off by %vx", b, ratio)
		}
	}
}

func TestGravityEstimatePanics(t *testing.T) {
	topo := topology.Abilene()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GravityEstimate(topo, make([]float64, 3))
}

func TestGravityEstimateZeroTraffic(t *testing.T) {
	topo := topology.Abilene()
	g := GravityEstimate(topo, make([]float64, topo.NumLinks()))
	for _, v := range g {
		if v != 0 {
			t.Fatal("zero loads must give zero estimate")
		}
	}
}

func TestTomogravitySatisfiesLinkConstraints(t *testing.T) {
	topo, _, y := fixture(t, 82, 24)
	tg := NewTomogravity(topo)
	for b := 0; b < 24; b += 5 {
		row := y.Row(b)
		x, err := tg.Estimate(row)
		if err != nil {
			t.Fatal(err)
		}
		if le := tg.LinkError(x, row); le > 0.02 {
			t.Fatalf("bin %d: link residual %v", b, le)
		}
	}
}

func TestTomogravityBeatsGravity(t *testing.T) {
	// Tomogravity's constraint correction must reduce the OD-level error
	// of the plain gravity prior.
	topo, x, y := fixture(t, 83, 48)
	tg := NewTomogravity(topo)
	var gravErr, tomoErr float64
	var n int
	for b := 0; b < 48; b += 7 {
		truth := x.Row(b)
		g := GravityEstimate(topo, y.Row(b))
		est, err := tg.Estimate(y.Row(b))
		if err != nil {
			t.Fatal(err)
		}
		gravErr += mat.Norm2(mat.SubVec(g, truth))
		tomoErr += mat.Norm2(mat.SubVec(est, truth))
		n++
	}
	if tomoErr >= gravErr {
		t.Fatalf("tomogravity error %v not below gravity %v", tomoErr, gravErr)
	}
}

func TestEstimateMatrixShape(t *testing.T) {
	topo, _, y := fixture(t, 84, 12)
	tg := NewTomogravity(topo)
	est, err := tg.EstimateMatrix(y)
	if err != nil {
		t.Fatal(err)
	}
	r, c := est.Dims()
	if r != 12 || c != topo.NumFlows() {
		t.Fatalf("estimate dims %dx%d", r, c)
	}
}

func TestEstimateBadLength(t *testing.T) {
	topo := topology.Abilene()
	tg := NewTomogravity(topo)
	if _, err := tg.Estimate(make([]float64, 3)); err == nil {
		t.Fatal("expected length error")
	}
}

// TestSubspaceQuantifiesBetterThanTomography reproduces the Section 8
// contrast: reading an anomaly's size off per-bin traffic-matrix
// estimates (difference between the anomalous bin's estimate and the
// neighbouring bin's) is far less accurate than the subspace
// quantification, because tomography must estimate all flows at once.
func TestSubspaceQuantifiesBetterThanTomography(t *testing.T) {
	topo, x, _ := fixture(t, 85, 1008)
	flow := topo.FlowID(4, 9)
	const bin, size = 600, 9e7
	traffic.Inject(x, []traffic.Anomaly{{Flow: flow, Bin: bin, Delta: size}})
	y := traffic.LinkLoads(topo, x)

	// Subspace estimate.
	diag, err := core.NewDiagnoser(y, topo.RoutingMatrix(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, alarmed := diag.DiagnoseAt(y.Row(bin))
	if !alarmed || d.Flow != flow {
		t.Fatalf("subspace diagnosis failed: %+v alarmed=%v", d, alarmed)
	}
	subspaceErr := math.Abs(d.Bytes-size) / size

	// Tomography estimate: flow value at the anomalous bin minus its
	// value one bin earlier.
	tg := NewTomogravity(topo)
	now, err := tg.Estimate(y.Row(bin))
	if err != nil {
		t.Fatal(err)
	}
	prev, err := tg.Estimate(y.Row(bin - 1))
	if err != nil {
		t.Fatal(err)
	}
	tomoErr := math.Abs((now[flow] - prev[flow]) - size)
	tomoRelErr := tomoErr / size

	if subspaceErr > 0.3 {
		t.Fatalf("subspace quantification error %v too large", subspaceErr)
	}
	if subspaceErr >= tomoRelErr {
		t.Fatalf("subspace error %.3f not below tomography error %.3f", subspaceErr, tomoRelErr)
	}
}

func TestGravityHeavyFlowsRanked(t *testing.T) {
	// The gravity estimate must broadly rank flows like the truth:
	// correlation between estimated and true flow vectors is positive
	// and substantial.
	topo, x, y := fixture(t, 86, 24)
	truth := x.Row(3)
	g := GravityEstimate(topo, y.Row(3))
	mt, st := stats.MeanStd(truth)
	mg, sg := stats.MeanStd(g)
	var cov float64
	for f := range truth {
		cov += (truth[f] - mt) * (g[f] - mg)
	}
	corr := cov / float64(len(truth)-1) / (st * sg)
	// Plain gravity is a crude prior (tomogravity exists because of
	// this); require substantial but not tight agreement.
	if corr < 0.5 {
		t.Fatalf("gravity correlation with truth %v < 0.5", corr)
	}
}
