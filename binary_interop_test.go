package netanomaly_test

// Cross-version interoperability of the binary wire format: one
// decoder entry point sniffs the stream header and serves v1 per-bin
// frames and v2 batch frames (either codec) alike, so a fleet can mix
// collectors speaking different versions against one ingest daemon.
// The table below pins the contracts that make that safe: bit-exact
// round trips for every (version, codec, capacity), header sniffing
// that reports the negotiated format, and v1 byte-compatibility — the
// zero WireFormat still writes the exact bytes the v1 encoder always
// wrote.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"netanomaly"
)

// interopMatrix builds a bins x links matrix of whole-byte traffic
// counts with a diurnal swing, one constant column, and one negative
// sentinel — the value mix both codecs must carry bit-exactly.
func interopMatrix(bins, links int) *netanomaly.Matrix {
	rng := rand.New(rand.NewSource(41))
	data := make([]float64, bins*links)
	for i := 0; i < bins; i++ {
		phase := 2 * math.Pi * float64(i) / 288
		for j := 0; j < links; j++ {
			switch j {
			case 0:
				data[i*links+j] = 1.5e6 // idle link: constant column
			case 1:
				data[i*links+j] = -273.5 // codecs must not assume non-negative
			default:
				base := 2e6 * (1 + 0.3*float64(j))
				data[i*links+j] = math.Round(base * (1 + 0.4*math.Sin(phase)) * (1 + 0.05*rng.NormFloat64()))
			}
		}
	}
	return netanomaly.NewMatrix(bins, links, data)
}

func TestBinaryVersionInterop(t *testing.T) {
	m := interopMatrix(150, 7)
	cases := []struct {
		name   string
		format netanomaly.WireFormat
	}{
		{"v1", netanomaly.WireFormat{}},
		{"v2_raw_cap4", netanomaly.WireFormat{Version: 2, Codec: netanomaly.CodecRaw, BatchBins: 4}},
		{"v2_raw_cap64", netanomaly.WireFormat{Version: 2, Codec: netanomaly.CodecRaw, BatchBins: 64}},
		{"v2_xor_cap4", netanomaly.WireFormat{Version: 2, Codec: netanomaly.CodecXOR, BatchBins: 4}},
		{"v2_xor_cap64", netanomaly.WireFormat{Version: 2, Codec: netanomaly.CodecXOR, BatchBins: 64}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := netanomaly.WriteMatrixBinaryFormat(&buf, m, tc.format); err != nil {
				t.Fatalf("encode %+v: %v", tc.format, err)
			}
			encoded := append([]byte(nil), buf.Bytes()...)

			// The single sniffing entry point must decode every version
			// to the identical bits.
			got, err := netanomaly.ReadMatrixBinary(bytes.NewReader(encoded))
			if err != nil {
				t.Fatalf("decode %+v: %v", tc.format, err)
			}
			rows, cols := got.Dims()
			wr, wc := m.Dims()
			if rows != wr || cols != wc {
				t.Fatalf("decoded %dx%d, want %dx%d", rows, cols, wr, wc)
			}
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					if math.Float64bits(got.At(i, j)) != math.Float64bits(m.At(i, j)) {
						t.Fatalf("bit mismatch at %d,%d: got %v want %v", i, j, got.At(i, j), m.At(i, j))
					}
				}
			}

			// Header sniffing must report the format that was written,
			// with v1 normalizing to the raw codec (per-bin framing is
			// reported as batch capacity 0).
			dec, err := netanomaly.NewBinaryDecoder(bytes.NewReader(encoded))
			if err != nil {
				t.Fatalf("sniff header: %v", err)
			}
			want := tc.format
			if want.Version == 0 {
				want = netanomaly.WireFormat{Version: 1, Codec: netanomaly.CodecRaw}
			}
			if dec.Format() != want {
				t.Fatalf("sniffed format %+v, want %+v", dec.Format(), want)
			}

			// Re-encoding under the sniffed format must reproduce the
			// stream byte for byte (canonical serialization).
			var again bytes.Buffer
			if err := netanomaly.WriteMatrixBinaryFormat(&again, got, dec.Format()); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(again.Bytes(), encoded) {
				t.Fatalf("%s: re-encode under sniffed format differs (%d vs %d bytes)", tc.name, again.Len(), len(encoded))
			}
		})
	}

	// v1 byte-compatibility: the zero WireFormat and the original v1
	// writer must emit identical streams, so pre-v2 consumers see no
	// change at all.
	var legacy, zero bytes.Buffer
	if err := netanomaly.WriteMatrixBinary(&legacy, m); err != nil {
		t.Fatal(err)
	}
	if err := netanomaly.WriteMatrixBinaryFormat(&zero, m, netanomaly.WireFormat{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), zero.Bytes()) {
		t.Fatalf("zero WireFormat stream (%d bytes) differs from v1 writer (%d bytes)", zero.Len(), legacy.Len())
	}
}
