// Onlinemonitor shows the deployment mode of Section 7.1: a streaming
// collector delivers link measurements bin by bin; the online detector
// tests each against a model fitted on the previous week, raises alarms
// with the identified OD flow and size, and refits daily. In a real
// deployment an alarm would trigger fine-grained flow collection on the
// implicated routers; here it prints the trigger.
package main

import (
	"context"
	"fmt"
	"log"

	"netanomaly"
	"netanomaly/internal/netmeas"
)

func main() {
	topo := netanomaly.SprintEurope()

	// Two weeks of traffic: week one trains the model, week two streams.
	cfg := netanomaly.DefaultTrafficConfig(2024)
	cfg.Bins = 2016
	od, err := netanomaly.GenerateTraffic(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Three anomalies during week two, unknown to the detector. The
	// traffic-loss incident hits the network's largest flow so the drop
	// is not clipped at zero.
	biggest := 0
	for f := 1; f < topo.NumFlows(); f++ {
		if od.At(1008+555, f) > od.At(1008+555, biggest) {
			biggest = f
		}
	}
	incidents := []netanomaly.Anomaly{
		{Flow: topo.FlowID(1, 9), Bin: 1008 + 211, Delta: 6e7},
		{Flow: biggest, Bin: 1008 + 555, Delta: -5e7}, // traffic loss
		{Flow: topo.FlowID(11, 0), Bin: 1008 + 871, Delta: 8e7},
	}
	netanomaly.InjectAnomalies(od, incidents)
	links := netanomaly.LinkLoads(topo, od)

	week1 := netanomaly.NewMatrix(1008, topo.NumLinks(), nil)
	for b := 0; b < 1008; b++ {
		week1.SetRow(b, links.RowView(b))
	}
	detector, err := netanomaly.NewOnlineDetector(week1, topo, netanomaly.OnlineConfig{
		Window:     1008,
		RefitEvery: 144, // refit once per simulated day
	})
	if err != nil {
		log.Fatal(err)
	}

	// The SNMP poller replays week two as a measurement stream.
	week2 := netanomaly.NewMatrix(1008, topo.NumLinks(), nil)
	for b := 0; b < 1008; b++ {
		week2.SetRow(b, links.RowView(1008+b))
	}
	snmp, err := netmeas.NewSNMPPoller(0.001, 7)
	if err != nil {
		log.Fatal(err)
	}
	stream := netmeas.Stream(context.Background(), snmp.Poll(week2), 0)

	fmt.Println("monitoring week two (1008 bins)...")
	alarms := 0
	for m := range stream {
		alarm, anomalous, err := detector.Process(m.Loads)
		if err != nil {
			log.Fatal(err)
		}
		if !anomalous {
			continue
		}
		alarms++
		day := m.Bin / 144
		hour := float64(m.Bin%144) / 6
		origin, _ := topo.FlowEndpoints(alarm.Flow)
		fmt.Printf("ALARM day %d %04.1fh: flow %-8s ~%+.1f MB -> trigger flow collection at PoP %q\n",
			day, hour, topo.FlowName(alarm.Flow), alarm.Bytes/1e6,
			topo.PoPs()[origin].Name)
	}
	fmt.Printf("week complete: %d alarms, %d bins processed\n", alarms, detector.Processed())

	// Ground truth for the reader.
	fmt.Println("\ninjected incidents were:")
	for _, inc := range incidents {
		fmt.Printf("  bin %d (day %d): flow %s, %+.1f MB\n",
			inc.Bin-1008, (inc.Bin-1008)/144, topo.FlowName(inc.Flow), inc.Delta/1e6)
	}
}
