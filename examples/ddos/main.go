// Ddos demonstrates the multi-flow generalization of Section 7.2: a
// distributed denial-of-service attack adds traffic to several OD flows
// converging on one destination PoP, each with a different intensity.
// Single-flow hypotheses explain such an anomaly poorly; the Theta-matrix
// identification fits per-flow intensities by least squares and picks the
// destination whose flow set leaves the smallest residual.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"netanomaly"
)

func main() {
	topo := netanomaly.Abilene()
	cfg := netanomaly.DefaultTrafficConfig(777)
	od, err := netanomaly.GenerateTraffic(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	links := netanomaly.LinkLoads(topo, od)

	diag, err := netanomaly.NewDiagnoser(links, topo, netanomaly.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The attack: traffic from five origins converges on Washington with
	// different intensities, at one ten-minute bin.
	victim, _ := topo.PoPByName("wash")
	rng := rand.New(rand.NewSource(5))
	const attackBin = 650
	row := od.Row(attackBin)
	var attackFlows []int
	fmt.Println("attack traffic (hidden from the detector):")
	total := 0.0
	for _, origin := range rng.Perm(topo.NumPoPs())[:5] {
		if origin == victim.ID {
			continue
		}
		f := topo.FlowID(origin, victim.ID)
		intensity := 2e7 + 4e7*rng.Float64()
		row[f] += intensity
		total += intensity
		attackFlows = append(attackFlows, f)
		fmt.Printf("  %-12s %+6.1f MB\n", topo.FlowName(f), intensity/1e6)
	}
	fmt.Printf("  total        %+6.1f MB\n\n", total/1e6)
	y := netanomaly.LinkLoads(topo, netanomaly.NewMatrix(1, len(row), row)).Row(0)

	// Step 1: detection.
	det := diag.Detector().Detect(y)
	fmt.Printf("detection: SPE %.4g vs threshold %.4g -> alarm=%v\n", det.SPE, det.Threshold, det.Alarm)
	if !det.Alarm {
		log.Fatal("attack not detected; increase intensity")
	}

	// Step 2a: the best single-flow hypothesis leaves a large residual.
	single := diag.Identifier().Identify(y)
	fmt.Printf("best single-flow hypothesis: %s (residual %.4g)\n",
		topo.FlowName(single.Flow), single.ResidualSq)

	// Step 2b: multi-flow hypotheses — one candidate per destination PoP.
	candidates := netanomaly.MultiFlowCandidates(topo)
	multi := diag.Identifier().IdentifyMulti(y, candidates)
	fmt.Printf("best multi-flow hypothesis: flows into %q (residual %.4g, %.1fx smaller)\n\n",
		topo.PoPs()[multi.Candidate].Name, multi.ResidualSq, single.ResidualSq/multi.ResidualSq)

	// Step 3: per-flow quantification of the attack.
	type contrib struct {
		flow  int
		bytes float64
	}
	var cs []contrib
	for i, f := range multi.Flows {
		cs = append(cs, contrib{f, multi.Bytes[i]})
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].bytes > cs[j].bytes })
	fmt.Println("estimated per-flow attack traffic (top 6):")
	for _, c := range cs[:6] {
		marker := ""
		for _, af := range attackFlows {
			if af == c.flow {
				marker = "  <- true attack flow"
			}
		}
		fmt.Printf("  %-12s %+6.1f MB%s\n", topo.FlowName(c.flow), c.bytes/1e6, marker)
	}
	if multi.Candidate != victim.ID {
		log.Fatalf("identified destination %d, want %d", multi.Candidate, victim.ID)
	}
}
