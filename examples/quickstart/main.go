// Quickstart: generate a week of network-wide traffic on the Abilene
// topology, inject a volume anomaly into one OD flow, and diagnose it
// from link measurements alone — the paper's three steps (detect,
// identify, quantify) in under a page of code.
package main

import (
	"fmt"
	"log"

	"netanomaly"
)

func main() {
	// The network: 11 PoPs, 41 links, 121 OD flows.
	topo := netanomaly.Abilene()

	// A week of synthetic OD traffic (1008 ten-minute bins) with diurnal
	// and weekly structure.
	cfg := netanomaly.DefaultTrafficConfig(42)
	od, err := netanomaly.GenerateTraffic(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The anomaly: 90 MB suddenly appear in the Denver -> New York flow
	// on Thursday morning. This is invisible to the detector, which only
	// ever sees link totals.
	dnvr, _ := topo.PoPByName("dnvr")
	nycm, _ := topo.PoPByName("nycm")
	flow := topo.FlowID(dnvr.ID, nycm.ID)
	const bin, size = 3*144 + 57, 9e7
	netanomaly.InjectAnomalies(od, []netanomaly.Anomaly{{Flow: flow, Bin: bin, Delta: size}})

	// What the operator actually has: SNMP-style link byte counts.
	links := netanomaly.LinkLoads(topo, od)

	// Fit the subspace model (3-sigma separation, 99.9% confidence) and
	// diagnose the whole week.
	diag, err := netanomaly.NewDiagnoser(links, topo, netanomaly.Options{})
	if err != nil {
		log.Fatal(err)
	}
	model := diag.Detector().Model()
	fmt.Printf("normal subspace rank: %d of %d dimensions\n", model.Rank(), model.NumLinks())
	fmt.Printf("SPE threshold (99.9%%): %.4g\n\n", diag.Detector().Limit())

	for _, a := range diag.DiagnoseSeries(links) {
		day := a.Bin / 144
		hour := float64(a.Bin%144) / 6
		fmt.Printf("anomaly at day %d, %04.1fh: flow %-14s ~%.1f MB (SPE %.3g > %.3g)\n",
			day, hour, topo.FlowName(a.Flow), a.Bytes/1e6, a.SPE, a.Threshold)
	}
}
