// Compare contrasts spatial against temporal anomaly detection on the
// same streamed link data — the paper's Section 7.3 comparison, run
// online. The subspace method exploits correlation across links; the
// forecasting baselines (EWMA, Holt-Winters, Fourier basis fitting)
// exploit correlation across time within each link, with adaptive
// per-link k-sigma residual thresholds; the hybrid backend chains the
// two, running EWMA triage on every bin and escalating only its alarms
// to a subspace stage for flow identification. All five backends stream
// the identical bins through the core.ViewDetector contract and are
// scored on the identical labels, so the detection, false-alarm and
// identification rates are directly comparable.
//
// The mixed anomaly sizes spread the backends apart. The smoothing
// forecasters (EWMA, Holt-Winters) are sharp per-link change detectors
// on this clean synthetic traffic and catch even the small spikes; the
// Fourier fit only models the periodic structure, so residual noise
// drowns moderate anomalies; the subspace method misses the smallest
// spike (it lands in a large flow whose variance the normal subspace
// absorbs — Section 5.4) but identifies the responsible OD flow behind
// every detection, and its advantage grows as per-link variability
// rises relative to anomaly size, which is the regime the paper's real
// backbone traces live in (Figure 10). The hybrid row shows the
// composed operating point: EWMA's detections, subspace-grade flow
// attribution on the escalated bins, and a subspace stage that touched
// only a handful of bins instead of the whole stream.
package main

import (
	"fmt"
	"log"

	"netanomaly"
	"netanomaly/internal/core"
	"netanomaly/internal/eval"
	"netanomaly/internal/forecast"
)

func main() {
	topo := netanomaly.SprintEurope()
	cfg := netanomaly.DefaultTrafficConfig(1101)
	cfg.TotalMeanRate = 7.2e8
	cfg.Bins = 1008 + 432 // one seeding week + three streamed days
	od, err := netanomaly.GenerateTraffic(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Anomalies spanning ~8e6 to 6.5e7 bytes in the streamed portion.
	anomalies := []netanomaly.Anomaly{
		{Flow: topo.FlowID(0, 7), Bin: 1008 + 60, Delta: 8e6},
		{Flow: topo.FlowID(9, 3), Bin: 1008 + 170, Delta: 1.2e7},
		{Flow: topo.FlowID(5, 12), Bin: 1008 + 290, Delta: 2.4e7},
		{Flow: topo.FlowID(3, 1), Bin: 1008 + 390, Delta: 6.5e7},
	}
	netanomaly.InjectAnomalies(od, anomalies)
	links := netanomaly.LinkLoads(topo, od)
	_, m := links.Dims()
	history := netanomaly.NewMatrix(1008, m, links.RawData()[:1008*m])
	stream := netanomaly.NewMatrix(432, m, links.RawData()[1008*m:])
	truth := make([]eval.LabeledBin, len(anomalies))
	for i, a := range anomalies {
		truth[i] = eval.LabeledBin{Bin: a.Bin - 1008, Flow: a.Flow}
	}

	subspace, err := core.NewOnlineDetector(history, topo.RoutingMatrix(), core.OnlineConfig{Window: 1008})
	if err != nil {
		log.Fatal(err)
	}
	backends := []core.ViewDetector{subspace}
	for _, kind := range []forecast.Kind{forecast.EWMA, forecast.HoltWinters, forecast.Fourier} {
		det, err := forecast.NewDetector(history, forecast.Config{Kind: kind})
		if err != nil {
			log.Fatal(err)
		}
		backends = append(backends, det)
	}
	hybrid := buildHybrid(topo, history)
	backends = append(backends, hybrid)

	fmt.Printf("%d injected anomalies (8e6..6.5e7 bytes) in %d streamed bins of %d-link data\n\n",
		len(anomalies), stream.Rows(), m)
	for _, det := range backends {
		r, err := eval.EvaluateStreamingFlows(det, stream, 64, truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r)
	}
	hs := hybrid.HybridStats()
	fmt.Printf("\nhybrid cost: subspace stage saw %d of %d streamed bins (%d triage alarms, %d identified)\n",
		hs.Escalated, stream.Rows(), hs.TriageAlarms, hs.Identified)

	fmt.Println("\nconclusion: on clean synthetic traffic the smoothing forecasters")
	fmt.Println("detect competitively but cannot name the OD flow behind an alarm;")
	fmt.Println("the subspace method identifies flows on every detection; the hybrid")
	fmt.Println("keeps EWMA's detections and per-bin cost while borrowing subspace")
	fmt.Println("identification for just the escalated bins (Sections 6.2, 7.3).")
}

// buildHybrid composes the triage→identification backend the way
// netanomaly.AddView's hybrid kind does: an EWMA triage stage over a
// windowed subspace identification stage, immediate escalation.
func buildHybrid(topo *netanomaly.Topology, history *netanomaly.Matrix) *core.HybridDetector {
	triage, err := forecast.NewDetector(history, forecast.Config{Kind: forecast.EWMA})
	if err != nil {
		log.Fatal(err)
	}
	identify, err := core.NewOnlineDetector(history, topo.RoutingMatrix(), core.OnlineConfig{Window: 1008})
	if err != nil {
		log.Fatal(err)
	}
	hybrid, err := core.NewHybridDetector(triage, identify, history, core.HybridConfig{})
	if err != nil {
		log.Fatal(err)
	}
	return hybrid
}
