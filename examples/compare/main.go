// Compare contrasts spatial against temporal anomaly detection on the
// same link data (Section 7.3 / Figure 10): the subspace method exploits
// correlation across links, while Fourier filtering and EWMA smoothing
// exploit correlation across time within each link. On traffic with rich
// periodic structure, the temporal residuals stay noisy and periodic —
// no threshold separates anomalies from normal traffic — while the
// subspace residual isolates them sharply.
package main

import (
	"fmt"
	"log"

	"netanomaly"
	"netanomaly/internal/core"
	"netanomaly/internal/timeseries"
)

func main() {
	topo := netanomaly.SprintEurope()
	cfg := netanomaly.DefaultTrafficConfig(1101)
	cfg.TotalMeanRate = 7.2e8
	od, err := netanomaly.GenerateTraffic(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	anomalies := []netanomaly.Anomaly{
		{Flow: topo.FlowID(0, 7), Bin: 260, Delta: 2.6e7},
		{Flow: topo.FlowID(9, 3), Bin: 640, Delta: 3.2e7},
		{Flow: topo.FlowID(5, 12), Bin: 930, Delta: 2.4e7},
	}
	netanomaly.InjectAnomalies(od, anomalies)
	links := netanomaly.LinkLoads(topo, od)
	bins, nLinks := links.Dims()

	// Subspace residual: ||C~ y||^2 per bin.
	p, err := core.Fit(links)
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Build(p, core.SeparateAxes(p, core.DefaultSigma))
	if err != nil {
		log.Fatal(err)
	}
	subspace := make([]float64, bins)
	for b := 0; b < bins; b++ {
		subspace[b] = model.SPE(links.Row(b))
	}

	// Temporal residuals: filter each link's timeseries independently and
	// take the squared norm of the per-bin residual vector.
	fourier := make([]float64, bins)
	ewma := make([]float64, bins)
	fm := timeseries.NewFourierModel(1.0 / 6.0)
	for l := 0; l < nLinks; l++ {
		col := links.Col(l)
		fit, err := fm.Fit(col)
		if err != nil {
			log.Fatal(err)
		}
		pred := (timeseries.EWMA{Alpha: 0.25}).Forecast(col)
		for b := 0; b < bins; b++ {
			df := col[b] - fit[b]
			fourier[b] += df * df
			de := col[b] - pred[b]
			ewma[b] += de * de
		}
	}

	trueBins := map[int]bool{}
	for _, a := range anomalies {
		trueBins[a.Bin] = true
	}
	report := func(name string, resid []float64) {
		minAnom, maxNorm := -1.0, 0.0
		for b, v := range resid {
			if trueBins[b] {
				if minAnom < 0 || v < minAnom {
					minAnom = v
				}
			} else if v > maxNorm {
				maxNorm = v
			}
		}
		sep := minAnom / maxNorm
		verdict := "anomalies NOT separable from normal traffic"
		if sep > 1 {
			verdict = fmt.Sprintf("clean threshold exists (margin %.1fx)", sep)
		}
		fmt.Printf("%-8s residual: min@anomaly %.3g, max@normal %.3g -> %s\n",
			name, minAnom, maxNorm, verdict)
	}
	fmt.Printf("three injected anomalies on %d bins of %d-link data\n\n", bins, nLinks)
	report("subspace", subspace)
	report("fourier", fourier)
	report("ewma", ewma)

	fmt.Println("\nconclusion: spatial correlation across links separates what")
	fmt.Println("temporal filtering of individual links cannot (Figure 10).")
}
